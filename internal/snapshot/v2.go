// Version-2 snapshot format: the mmap-ready layout.
//
// Version 1 framed sections with inline length prefixes and varint-packed
// payloads, and sealed the file with one whole-file SHA-256. That shape
// forces a copying decode: offsets arrive as deltas, u32 arrays as varints,
// and nothing is aligned, so a loader must materialize every array on the
// heap. Version 2 keeps the same five sections and the same byte-exact
// content but lays them out for zero-copy loading:
//
//	offset 0    "QCSNAP" magic (6), u16le version = 2, u8 section count,
//	            7 zero bytes of padding            — 16-byte header
//	offset 16   directory: 5 × 56-byte entries
//	            [u8 kind][7 zero][u64le payload offset][u64le payload
//	            length][32-byte SHA-256 of the payload]
//	offset 296  32-byte SHA-256 over bytes [0, 296) — seals header + directory
//	offset 328  8 zero bytes of padding
//	offset 336  first section payload
//
// Every section payload starts on a 16-byte file offset (zero-filled gaps
// between sections) and keeps its internal u32 arrays on 4-byte boundaries,
// so a loader may view them in place — from a heap buffer or straight from
// an mmap'd file — with at most an endianness/alignment fallback copy.
// There is no whole-file trailer: each payload carries its own digest in
// the directory, so a mapped loader verifies exactly the sections it reads
// and never touches pages it does not need. The file must end exactly at
// the last payload's final byte; trailing garbage is corruption.
//
// The writer is single-pass and streaming: sections are written front to
// back through a small buffer while their digests accumulate, and the
// header + directory (whose offsets, lengths and digests are only known at
// the end) are patched into the zero-filled prelude with one WriteAt. That
// is what lets the sharded builder emit a paper-scale snapshot while
// holding only one shard of peers in memory.
package snapshot

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"unsafe"

	"querycentric/internal/dict"
	"querycentric/internal/gmsg"
	"querycentric/internal/gnet"
)

// Fixed v2 layout offsets (see the package comment above).
const (
	headerLen       = 16
	dirEntryLen     = 1 + 7 + 8 + 8 + sha256.Size // kind, pad, offset, length, digest
	dirOff          = headerLen
	dirHashOff      = dirOff + numSections*dirEntryLen // 296
	preludeLen      = dirHashOff + sha256.Size         // 328
	sectionAlign    = 16
	firstSectionOff = (preludeLen + sectionAlign - 1) / sectionAlign * sectionAlign // 336
)

// hostLittleEndian reports whether in-place u32 views of little-endian file
// bytes are valid on this machine.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// dirEntry is one directory slot: where a section's payload lives and what
// it must hash to.
type dirEntry struct {
	kind byte
	off  uint64
	size uint64
	sum  [sha256.Size]byte
}

// Writer streams a version-2 snapshot to a file: a zero-filled prelude,
// then each section in order (BeginSection → content → EndSection), then
// Finish, which patches the real header, directory and directory hash over
// the prelude. Content methods are error-latched — the first failure
// sticks and every later call is a no-op — so call sites stay linear and
// check once.
type Writer struct {
	f   *os.File
	bw  *bufio.Writer
	h   hash.Hash
	off int64 // absolute file offset of the next byte
	cur int   // directory index of the open section; -1 between sections
	n   int   // sections completed
	dir [numSections]dirEntry
	err error
	buf [8]byte
}

// NewWriter starts a snapshot at f's origin. f must be empty (or about to
// be overwritten from offset 0): the prelude is zero-filled now and
// rewritten in place by Finish.
func NewWriter(f *os.File) (*Writer, error) {
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<20), h: sha256.New(), cur: -1}
	var zero [firstSectionOff]byte
	if _, err := w.bw.Write(zero[:]); err != nil {
		return nil, err
	}
	w.off = firstSectionOff
	return w, nil
}

// BeginSection pads the file to the section alignment and opens a section
// of the given kind. Sections must be written in kind order, meta through
// indexes.
func (w *Writer) BeginSection(kind byte) error {
	if w.err != nil {
		return w.err
	}
	if w.cur >= 0 {
		w.err = fmt.Errorf("snapshot: BeginSection(%d) with section %d still open", kind, w.dir[w.cur].kind)
		return w.err
	}
	if w.n >= numSections {
		w.err = fmt.Errorf("snapshot: BeginSection(%d) after all %d sections", kind, numSections)
		return w.err
	}
	if want := byte(secMeta + w.n); kind != want {
		w.err = fmt.Errorf("snapshot: BeginSection(%d) out of order, want %d", kind, want)
		return w.err
	}
	// The alignment gap belongs to no section: written, never hashed.
	var zero [sectionAlign]byte
	if pad := (-w.off) & (sectionAlign - 1); pad > 0 {
		if _, err := w.bw.Write(zero[:pad]); err != nil {
			w.err = err
			return err
		}
		w.off += pad
	}
	w.h.Reset()
	w.cur = w.n
	w.dir[w.cur] = dirEntry{kind: kind, off: uint64(w.off)}
	return nil
}

// EndSection closes the open section, recording its length and digest.
func (w *Writer) EndSection() error {
	if w.err != nil {
		return w.err
	}
	if w.cur < 0 {
		w.err = fmt.Errorf("snapshot: EndSection with no open section")
		return w.err
	}
	e := &w.dir[w.cur]
	e.size = uint64(w.off) - e.off
	w.h.Sum(e.sum[:0])
	w.cur = -1
	w.n++
	return nil
}

// Write appends raw payload bytes to the open section (io.Writer, so side
// buffers spill in with io.Copy). Bytes are folded into the section digest
// as they pass.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.cur < 0 {
		w.err = fmt.Errorf("snapshot: Write outside a section")
		return 0, w.err
	}
	n, err := w.bw.Write(p)
	w.h.Write(p[:n])
	w.off += int64(n)
	w.err = err
	return n, err
}

func (w *Writer) u8(v byte) {
	w.buf[0] = v
	w.Write(w.buf[:1])
}

func (w *Writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.Write(w.buf[:4])
}

func (w *Writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.Write(w.buf[:8])
}

// u32s writes a u32 array as little-endian bytes. On little-endian hosts
// the slice's own bytes are written directly; elsewhere a bounded scratch
// re-encodes, so output is identical on every machine.
func (w *Writer) u32s(v []uint32) {
	if len(v) == 0 {
		return
	}
	if hostLittleEndian {
		w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
		return
	}
	var scratch [4 << 10]byte
	for len(v) > 0 {
		n := min(len(v), len(scratch)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[4*i:], v[i])
		}
		w.Write(scratch[:4*n])
		v = v[n:]
	}
}

// pad4 zero-pads the open section so the next byte lands on a 4-byte file
// offset (section starts are 16-aligned, so file and section alignment
// agree). The pad is part of the section: hashed, and re-checked on load.
func (w *Writer) pad4() {
	var zero [4]byte
	if pad := (-w.off) & 3; pad > 0 {
		w.Write(zero[:pad])
	}
}

// Finish flushes the payloads and patches the header, directory and
// directory hash over the zero prelude. Returns the file size in bytes.
func (w *Writer) Finish() (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.cur >= 0 {
		return 0, fmt.Errorf("snapshot: Finish with section %d still open", w.dir[w.cur].kind)
	}
	if w.n != numSections {
		return 0, fmt.Errorf("snapshot: Finish after %d of %d sections", w.n, numSections)
	}
	if err := w.bw.Flush(); err != nil {
		return 0, err
	}
	var p [firstSectionOff]byte
	copy(p[:], magic)
	binary.LittleEndian.PutUint16(p[len(magic):], Version)
	p[len(magic)+2] = numSections
	for i, e := range w.dir {
		b := p[dirOff+i*dirEntryLen:]
		b[0] = e.kind
		binary.LittleEndian.PutUint64(b[8:], e.off)
		binary.LittleEndian.PutUint64(b[16:], e.size)
		copy(b[24:], e.sum[:])
	}
	sum := sha256.Sum256(p[:dirHashOff])
	copy(p[dirHashOff:], sum[:])
	if _, err := w.f.WriteAt(p[:], 0); err != nil {
		return 0, err
	}
	return w.off, nil
}

// ---------------------------------------------------------------------------
// Section encoders. One encoder per section, shared verbatim by Save (which
// walks a NetworkState) and by the sharded builder (which walks a skeleton
// network and per-shard state): both paths emit rows through the same
// functions, which is what makes their outputs byte-identical.

// writeMetaSection: 6 × u64le — seed, float bits of UltrapeerFrac,
// UltraDegree, FlatDegree, float bits of FirewalledFrac, peer count.
func writeMetaSection(w *Writer, cfg gnet.Config, nPeers int) {
	w.BeginSection(secMeta)
	w.u64(cfg.Seed)
	w.u64(math.Float64bits(cfg.UltrapeerFrac))
	w.u64(uint64(cfg.UltraDegree))
	w.u64(uint64(cfg.FlatDegree))
	w.u64(math.Float64bits(cfg.FirewalledFrac))
	w.u64(uint64(nPeers))
	w.EndSection()
}

// writeDictSection: u64 term count, u64 arena length, u32 offsets
// (count+1, raw), arena bytes.
func writeDictSection(w *Writer, termBytes []byte, termOff []uint32) {
	w.BeginSection(secDict)
	w.u64(uint64(len(termOff) - 1))
	w.u64(uint64(len(termBytes)))
	w.u32s(termOff)
	w.Write(termBytes)
	w.EndSection()
}

// topoSource abstracts where topology rows come from: a NetworkState
// (Save) or a live skeleton network (the sharded builder).
type topoSource struct {
	NPeers     int
	Firewalled func(i int) bool
	Ultrapeer  func(i int) bool
	GUID       func(i int) gmsg.GUID
	Neighbors  func(i int) []int
}

// writeTopologySection: u64 peer count, u64 total neighbor entries,
// firewalled bitset, ultrapeer bitset, 16-byte GUIDs, pad to 4, u32
// degrees, u32 neighbor IDs in per-peer list order (order is state: floods
// forward in list order).
func writeTopologySection(w *Writer, src topoSource) {
	n := src.NPeers
	total := 0
	for i := 0; i < n; i++ {
		total += len(src.Neighbors(i))
	}
	w.BeginSection(secTopology)
	w.u64(uint64(n))
	w.u64(uint64(total))
	writeBitset(w, n, src.Firewalled)
	writeBitset(w, n, src.Ultrapeer)
	for i := 0; i < n; i++ {
		g := src.GUID(i)
		w.Write(g[:])
	}
	w.pad4()
	for i := 0; i < n; i++ {
		w.u32(uint32(len(src.Neighbors(i))))
	}
	var scratch [1024]uint32
	for i := 0; i < n; i++ {
		nbrs := src.Neighbors(i)
		for len(nbrs) > 0 {
			k := min(len(nbrs), len(scratch))
			for j := 0; j < k; j++ {
				scratch[j] = uint32(nbrs[j])
			}
			w.u32s(scratch[:k])
			nbrs = nbrs[k:]
		}
	}
	w.EndSection()
}

func writeBitset(w *Writer, n int, bit func(i int) bool) {
	var chunk [512]byte
	for base := 0; base < n; base += 8 * len(chunk) {
		hi := min(base+8*len(chunk), n)
		nb := (hi - base + 7) / 8
		clear(chunk[:nb])
		for i := base; i < hi; i++ {
			if bit(i) {
				chunk[(i-base)/8] |= 1 << (i % 8)
			}
		}
		w.Write(chunk[:nb])
	}
}

// writeLibrariesHeader opens the libraries section: u64 peer count, u64
// total file count. Rows follow, one per peer in ID order; the caller ends
// the section.
func writeLibrariesHeader(w *Writer, nPeers, totalFiles int) {
	w.BeginSection(secLibraries)
	w.u64(uint64(nPeers))
	w.u64(uint64(totalFiles))
}

// appendLibraryRow encodes one peer's row: u32 file count, u32 indexes,
// u32 sizes, u32 name lengths, concatenated name bytes, pad to 4.
// Struct-of-arrays per row so the numeric columns stay 4-aligned and
// viewable in place. Rows are append-encoded into a caller scratch so the
// identical bytes can go straight into the main Writer (Save) or a spill
// file (the sharded builder).
func appendLibraryRow(b []byte, lib []gnet.File) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(lib)))
	for _, f := range lib {
		b = binary.LittleEndian.AppendUint32(b, f.Index)
	}
	for _, f := range lib {
		b = binary.LittleEndian.AppendUint32(b, f.Size)
	}
	for _, f := range lib {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Name)))
	}
	for _, f := range lib {
		b = append(b, f.Name...)
	}
	return appendPad4(b)
}

// writeIndexesHeader opens the indexes section: u64 peer count, u64 total
// skip blocks, u64 total arena bytes. Rows follow; the caller ends the
// section. The totals exist so a loader can carve single arena-backed
// allocations before walking rows — the sharded builder learns them from a
// side spill file before the header is written.
func writeIndexesHeader(w *Writer, nPeers int, totalBlocks, totalArena int64) {
	w.BeginSection(secIndexes)
	w.u64(uint64(nPeers))
	w.u64(uint64(totalBlocks))
	w.u64(uint64(totalArena))
}

// appendIndexRow encodes one peer's row: u32 term count, u32 posting
// count, u32 arena length, u32 block-first term IDs, u32 block arena
// offsets, arena bytes, pad to 4. The block count is derived from the term
// count (16-term blocks). Append-encoded for the same reason as
// appendLibraryRow.
func appendIndexRow(b []byte, ix *gnet.IndexState) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(ix.NTerms))
	b = binary.LittleEndian.AppendUint32(b, uint32(ix.NPostings))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ix.Arena)))
	b = appendU32s(b, termIDsToU32(ix.BlockFirst))
	b = appendU32s(b, ix.BlockOff)
	b = append(b, ix.Arena...)
	return appendPad4(b)
}

// appendU32s appends a u32 array as little-endian bytes (bulk on
// little-endian hosts, element-wise elsewhere — identical output).
func appendU32s(b []byte, v []uint32) []byte {
	if len(v) == 0 {
		return b
	}
	if hostLittleEndian {
		return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))...)
	}
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, x)
	}
	return b
}

// appendPad4 zero-pads a row buffer to a multiple of 4 bytes. Rows start
// 4-aligned within their section (the headers are 16 or 24 bytes and every
// row is padded), so buffer-relative and section-relative alignment agree.
func appendPad4(b []byte) []byte {
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	return b
}

// termIDsToU32 views a TermID slice as its underlying u32s (TermID is a
// defined uint32; no copy).
func termIDsToU32(v []dict.TermID) []uint32 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&v[0])), len(v))
}

func u32ToTermIDs(v []uint32) []dict.TermID {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*dict.TermID)(unsafe.Pointer(&v[0])), len(v))
}

// writeSnapshotV2 streams st to f in the version-2 layout. Shared by Save
// (over a whole in-heap state); the sharded builder drives the same
// section encoders incrementally instead.
func writeSnapshotV2(f *os.File, st *gnet.NetworkState) (int64, error) {
	w, err := NewWriter(f)
	if err != nil {
		return 0, err
	}
	writeMetaSection(w, st.Config, len(st.Peers))
	writeDictSection(w, st.DictBytes, st.DictOff)
	writeTopologySection(w, topoSource{
		NPeers:     len(st.Peers),
		Firewalled: func(i int) bool { return st.Firewalled[i] },
		Ultrapeer:  func(i int) bool { return st.Peers[i].Ultrapeer },
		GUID:       func(i int) gmsg.GUID { return st.Peers[i].ServentID },
		Neighbors:  func(i int) []int { return st.Peers[i].Neighbors },
	})
	totalFiles := 0
	var totalBlocks, totalArena int64
	for i := range st.Peers {
		totalFiles += len(st.Peers[i].Library)
		totalBlocks += int64(len(st.Peers[i].Index.BlockFirst))
		totalArena += int64(len(st.Peers[i].Index.Arena))
	}
	var row []byte
	writeLibrariesHeader(w, len(st.Peers), totalFiles)
	for i := range st.Peers {
		row = appendLibraryRow(row[:0], st.Peers[i].Library)
		w.Write(row)
	}
	w.EndSection()
	writeIndexesHeader(w, len(st.Peers), totalBlocks, totalArena)
	for i := range st.Peers {
		row = appendIndexRow(row[:0], &st.Peers[i].Index)
		w.Write(row)
	}
	w.EndSection()
	return w.Finish()
}

// ---------------------------------------------------------------------------
// Version-2 parsing. One parser serves both load paths: the copying loader
// hands it a heap buffer holding the file, the mapped loader hands it the
// mmap'd bytes. Each section's digest is verified right before that
// section is decoded, so a mapped load touches pages section by section
// and corruption is reported against the section that carries it.

// parseV2 decodes data (a complete version-2 file) into a NetworkState
// whose slices view data in place wherever alignment allows.
func parseV2(data []byte) (*gnet.NetworkState, error) {
	if len(data) < firstSectionOff {
		return nil, fmt.Errorf("%w: %d bytes cannot hold a v2 prelude", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w (bad magic %q)", ErrFormat, data[:len(magic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: file has version %d, this parser reads %d", ErrVersion, v, Version)
	}
	if n := data[len(magic)+2]; n != numSections {
		return nil, fmt.Errorf("%w: %d sections, want %d", ErrCorrupt, n, numSections)
	}
	// The directory hash seals the header and every directory entry; all
	// later bounds can trust what the directory says.
	sum := sha256.Sum256(data[:dirHashOff])
	if !bytes.Equal(sum[:], data[dirHashOff:preludeLen]) {
		return nil, fmt.Errorf("%w: directory carries %x, hashes to %x (%w)",
			ErrFingerprint, data[dirHashOff:dirHashOff+8], sum[:8], ErrCorrupt)
	}
	var dir [numSections]dirEntry
	end := uint64(firstSectionOff)
	for i := range dir {
		b := data[dirOff+i*dirEntryLen:]
		dir[i] = dirEntry{kind: b[0], off: binary.LittleEndian.Uint64(b[8:]), size: binary.LittleEndian.Uint64(b[16:])}
		copy(dir[i].sum[:], b[24:])
		e := &dir[i]
		if e.kind != byte(secMeta+i) {
			return nil, fmt.Errorf("%w: directory entry %d has kind %d", ErrCorrupt, i, e.kind)
		}
		if e.off%sectionAlign != 0 || e.off < end || e.off-end >= sectionAlign {
			return nil, fmt.Errorf("%w: section %d at offset %d, previous ends at %d", ErrCorrupt, e.kind, e.off, end)
		}
		if e.size > uint64(len(data)) || e.off+e.size > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %d claims [%d, %d) of a %d-byte file",
				ErrTruncated, e.kind, e.off, e.off+e.size, len(data))
		}
		end = e.off + e.size
	}
	if end != uint64(len(data)) {
		return nil, fmt.Errorf("%w: %d bytes after the last section", ErrCorrupt, uint64(len(data))-end)
	}
	// Alignment gaps (prelude pad and inter-section pads) must be zero:
	// they are the only bytes no digest covers.
	if !allZero(data[preludeLen:firstSectionOff]) {
		return nil, fmt.Errorf("%w: nonzero prelude padding", ErrCorrupt)
	}
	prev := uint64(firstSectionOff)
	for i := range dir {
		if !allZero(data[prev:dir[i].off]) {
			return nil, fmt.Errorf("%w: nonzero padding before section %d", ErrCorrupt, dir[i].kind)
		}
		prev = dir[i].off + dir[i].size
	}

	st := &gnet.NetworkState{}
	nPeers := 0
	for i := range dir {
		e := &dir[i]
		payload := data[e.off : e.off+e.size : e.off+e.size]
		sum := sha256.Sum256(payload)
		if !bytes.Equal(sum[:], e.sum[:]) {
			return nil, fmt.Errorf("%w: section %d carries %x, content hashes to %x (%w)",
				ErrFingerprint, e.kind, e.sum[:8], sum[:8], ErrCorrupt)
		}
		r := &r2{b: payload, section: int(e.kind)}
		switch e.kind {
		case secMeta:
			nPeers = decodeMetaV2(r, st)
		case secDict:
			decodeDictV2(r, st)
		case secTopology:
			decodeTopologyV2(r, st, nPeers)
		case secLibraries:
			decodeLibrariesV2(r, st)
		case secIndexes:
			decodeIndexesV2(r, st)
		}
		if r.err != nil {
			return nil, r.err
		}
		if r.pos != len(r.b) {
			return nil, fmt.Errorf("%w: section %d has %d trailing bytes", ErrCorrupt, e.kind, len(r.b)-r.pos)
		}
	}
	return st, nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

func decodeMetaV2(r *r2, st *gnet.NetworkState) int {
	st.Config.Seed = r.u64()
	st.Config.UltrapeerFrac = math.Float64frombits(r.u64())
	st.Config.UltraDegree = int(r.u64())
	st.Config.FlatDegree = int(r.u64())
	st.Config.FirewalledFrac = math.Float64frombits(r.u64())
	n := r.u64()
	const maxPeers = 1 << 28
	if r.err == nil && n > maxPeers {
		r.fail("peer count %d out of range", n)
		return 0
	}
	return int(n)
}

func decodeDictV2(r *r2, st *gnet.NetworkState) {
	n := r.u64()
	arenaLen := r.u64()
	if r.err != nil {
		return
	}
	// (n+1) u32 offsets plus the arena must fit the remainder — checked by
	// the takes themselves, but bound n first so no absurd count reaches an
	// allocation on the copy-fallback path.
	if n >= uint64(len(r.b))/4 {
		r.fail("dictionary claims %d terms in a %d-byte section", n, len(r.b))
		return
	}
	st.DictOff = r.u32s(int(n) + 1)
	st.DictBytes = r.take(arenaLen)
	if r.err == nil && uint64(st.DictOff[n]) != arenaLen {
		r.fail("offsets end at %d, arena is %d bytes", st.DictOff[n], arenaLen)
	}
}

func decodeTopologyV2(r *r2, st *gnet.NetworkState, nPeers int) {
	n := r.u64()
	total := r.u64()
	if r.err != nil {
		return
	}
	if n != uint64(nPeers) {
		r.fail("topology holds %d peers, meta says %d", n, nPeers)
		return
	}
	bitset := uint64((nPeers + 7) / 8)
	want := 16 + 2*bitset + 16*uint64(nPeers)
	want = (want + 3) &^ 3
	want += 4*uint64(nPeers) + 4*total
	if uint64(len(r.b)) != want {
		r.fail("%d peers / %d links need %d bytes, payload has %d", n, total, want, len(r.b))
		return
	}
	fw := r.take(bitset)
	ultra := r.take(bitset)
	st.Firewalled = make([]bool, nPeers)
	st.Peers = make([]gnet.PeerState, nPeers)
	for i := range st.Firewalled {
		st.Firewalled[i] = fw[i/8]&(1<<(i%8)) != 0
		st.Peers[i].Ultrapeer = ultra[i/8]&(1<<(i%8)) != 0
	}
	for i := range st.Peers {
		copy(st.Peers[i].ServentID[:], r.take(16))
	}
	r.pad4()
	deg := r.u32s(nPeers)
	nbr := r.u32s(int(total))
	if r.err != nil {
		return
	}
	// Neighbor lists are always heap (they are []int and mutable); one
	// arena allocation backs all of them, capped subslices per peer.
	arena := make([]int, total)
	for i, v := range nbr {
		if uint64(v) >= n {
			r.fail("neighbor entry %d links to nonexistent peer %d", i, v)
			return
		}
		arena[i] = int(v)
	}
	pos := 0
	for i := range st.Peers {
		d := int(deg[i])
		if pos+d > len(arena) {
			r.fail("degrees sum past the %d declared links", total)
			return
		}
		st.Peers[i].Neighbors = arena[pos : pos+d : pos+d]
		pos += d
	}
	if pos != len(arena) {
		r.fail("degrees sum to %d, topology declares %d links", pos, total)
	}
}

func decodeLibrariesV2(r *r2, st *gnet.NetworkState) {
	n := r.u64()
	total := r.u64()
	if r.err != nil {
		return
	}
	if n != uint64(len(st.Peers)) {
		r.fail("libraries hold %d peers, meta says %d", n, len(st.Peers))
		return
	}
	if total > uint64(len(r.b))/12 { // every file costs three u32 columns
		r.fail("%d files cannot fit a %d-byte section", total, len(r.b))
		return
	}
	// One File arena backs every library; names view the payload in place.
	arena := make([]gnet.File, total)
	used := 0
	for i := range st.Peers {
		nFiles := int(r.u32())
		if r.err != nil {
			return
		}
		if nFiles > len(arena)-used {
			r.fail("peer %d overflows the %d declared files", i, total)
			return
		}
		row := arena[used : used+nFiles : used+nFiles]
		used += nFiles
		fidx := r.u32s(nFiles)
		fsize := r.u32s(nFiles)
		nameLen := r.u32s(nFiles)
		if r.err != nil {
			return
		}
		for j := range row {
			row[j].Index = fidx[j]
			row[j].Size = fsize[j]
			row[j].Name = unsafeString(r.take(uint64(nameLen[j])))
		}
		r.pad4()
		if r.err != nil {
			return
		}
		st.Peers[i].Library = row
	}
	if used != len(arena) {
		r.fail("rows hold %d files, header declares %d", used, total)
	}
}

func decodeIndexesV2(r *r2, st *gnet.NetworkState) {
	n := r.u64()
	totalBlocks := r.u64()
	totalArena := r.u64()
	if r.err != nil {
		return
	}
	if n != uint64(len(st.Peers)) {
		r.fail("indexes hold %d peers, meta says %d", n, len(st.Peers))
		return
	}
	if totalBlocks > uint64(len(r.b))/8 || totalArena > uint64(len(r.b)) {
		r.fail("%d blocks / %d arena bytes cannot fit a %d-byte section", totalBlocks, totalArena, len(r.b))
		return
	}
	var blocks, arena uint64
	for i := range st.Peers {
		ix := &st.Peers[i].Index
		nTerms := r.u32()
		nPostings := r.u32()
		arenaLen := r.u32()
		if r.err != nil {
			return
		}
		const maxTermsPerPeer = 1 << 30
		if nTerms > maxTermsPerPeer || nPostings > math.MaxInt32 {
			r.fail("peer %d index claims %d terms / %d postings", i, nTerms, nPostings)
			return
		}
		ix.NTerms = int(nTerms)
		ix.NPostings = int(nPostings)
		nBlocks := (int(nTerms) + 15) / 16
		ix.BlockFirst = u32ToTermIDs(r.u32s(nBlocks))
		ix.BlockOff = r.u32s(nBlocks)
		ix.Arena = r.take(uint64(arenaLen))
		r.pad4()
		if r.err != nil {
			return
		}
		if nBlocks > 0 && uint64(ix.BlockOff[nBlocks-1]) >= uint64(arenaLen) {
			r.fail("peer %d last block offset %d beyond %d-byte arena", i, ix.BlockOff[nBlocks-1], arenaLen)
			return
		}
		blocks += uint64(nBlocks)
		arena += uint64(arenaLen)
	}
	if blocks != totalBlocks || arena != totalArena {
		r.fail("rows hold %d blocks / %d arena bytes, header declares %d / %d",
			blocks, arena, totalBlocks, totalArena)
	}
}

// r2 is the v2 payload cursor: positional (so padding is checkable against
// absolute section offsets), error-latched, and zero-copy where alignment
// and endianness allow.
type r2 struct {
	b       []byte
	pos     int
	section int
	err     error
}

func (r *r2) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w %d: %s", ErrCorrupt, r.section, fmt.Sprintf(format, args...))
	}
}

// take consumes n payload bytes as a zero-copy view.
func (r *r2) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.pos) {
		r.fail("needs %d bytes, %d left", n, len(r.b)-r.pos)
		return nil
	}
	p := r.b[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return p
}

func (r *r2) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *r2) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// u32s consumes an n-entry u32 array. On little-endian hosts with the
// expected 4-byte alignment it returns an in-place view of the payload
// (this is the zero-copy path mapped loads live on); otherwise it decodes
// into a fresh slice.
func (r *r2) u32s(n int) []uint32 {
	p := r.take(4 * uint64(n))
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out
}

// pad4 consumes the zero padding that realigns the cursor to 4 bytes.
func (r *r2) pad4() {
	if pad := (-r.pos) & 3; pad > 0 {
		p := r.take(uint64(pad))
		if p != nil && !allZero(p) {
			r.fail("nonzero row padding at %d", r.pos-pad)
		}
	}
}

// readFileBytes reads path fully into one heap buffer (the copying v2 load
// path; parseV2 then views that buffer exactly as it would a mapping).
func readFileBytes(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size > math.MaxInt-1 {
		return nil, fmt.Errorf("%w: %d-byte file", ErrCorrupt, size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return data, nil
}
