package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
)

// FuzzSnapshotLoad asserts Load's contract over arbitrary bytes: every
// input yields either one of the package's typed sentinel errors or a
// fingerprint-verified network — never a panic, never an untyped failure,
// and never a "valid" network from damaged bytes (the trailing SHA-256
// makes any mutation loud). Seeded with a real snapshot of a small
// catalog-backed network plus the classic traps: empty file, bare magic,
// bumped version, truncated and bit-flipped variants.
func FuzzSnapshotLoad(f *testing.F) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 11, Peers: 12, UniqueObjects: 48, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		f.Fatal(err)
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(11), cat)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.qcsnap")
	if _, err := Save(path, nw, 0); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte(magic))
	verBump := append([]byte(nil), seed...)
	verBump[len(magic)]++ // little-endian version low byte
	f.Add(verBump)
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.qcsnap")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(p, 0)
		if err != nil {
			for _, sentinel := range []error{ErrFormat, ErrVersion, ErrTruncated, ErrCorrupt, ErrFingerprint} {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("Load returned an untyped error: %v", err)
		}
		// Only a fingerprint-clean file gets here; the network must be
		// fully usable.
		if got == nil || len(got.Peers) == 0 {
			t.Fatalf("Load returned nil error but unusable network %v", got)
		}
	})
}
