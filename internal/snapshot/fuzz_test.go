package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
)

// FuzzSnapshotLoad asserts the loaders' contract over arbitrary bytes:
// every input yields either one of the package's typed sentinel errors or
// a fingerprint-verified network — never a panic, never an untyped
// failure, and never a "valid" network from damaged bytes (v1's trailing
// SHA-256 and v2's per-section digests make any mutation loud). Both the
// copying Load and the zero-copy LoadMapped run over every input; mapped
// networks additionally survive a flood-path probe before their mapping is
// released. Seeded with real v2 and v1 snapshots of a small catalog-backed
// network plus the classic traps: empty file, bare magic, bumped version,
// truncated and bit-flipped variants.
func FuzzSnapshotLoad(f *testing.F) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 11, Peers: 12, UniqueObjects: 48, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		f.Fatal(err)
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(11), cat)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.qcsnap")
	if _, err := Save(path, nw, 0); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte(magic))
	verBump := append([]byte(nil), seed...)
	verBump[len(magic)]++ // little-endian version low byte
	f.Add(verBump)
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// A genuine version-1 file: the compatibility decoder must keep reading
	// it and LoadMapped must keep refusing it, whatever the fuzzer grows
	// from it.
	st, err := nw.ExportState()
	if err != nil {
		f.Fatal(err)
	}
	v1path := filepath.Join(f.TempDir(), "seed_v1.qcsnap")
	v1f, err := os.Create(v1path)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := writeSnapshotV1(v1f, st); err != nil {
		f.Fatal(err)
	}
	if err := v1f.Close(); err != nil {
		f.Fatal(err)
	}
	seedV1, err := os.ReadFile(v1path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedV1)
	f.Add(seedV1[:len(seedV1)/2])

	typed := func(err error) bool {
		for _, sentinel := range []error{ErrFormat, ErrVersion, ErrTruncated, ErrCorrupt, ErrFingerprint} {
			if errors.Is(err, sentinel) {
				return true
			}
		}
		return false
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.qcsnap")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(p, 0)
		if err != nil {
			if !typed(err) {
				t.Fatalf("Load returned an untyped error: %v", err)
			}
		} else if got == nil || len(got.Peers) == 0 {
			// Only a fingerprint-clean file gets here; the network must be
			// fully usable.
			t.Fatalf("Load returned nil error but unusable network %v", got)
		}

		m, err := LoadMapped(p, 0)
		if err != nil {
			if !typed(err) {
				t.Fatalf("LoadMapped returned an untyped error: %v", err)
			}
			return
		}
		if m == nil || len(m.Peers) == 0 || !m.Borrowed() {
			t.Fatalf("LoadMapped returned nil error but unusable network %v", m)
		}
		// Touch the borrowed views before unmapping: a bounds bug in the
		// zero-copy parse would fault here, inside the test.
		if _, err := m.IndexChecksum(); err != nil {
			t.Fatalf("mapped network is not usable: %v", err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}
