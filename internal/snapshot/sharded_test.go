package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
	"querycentric/internal/rng"
)

// testBuildConfig mirrors buildNet's population so sharded output can be
// compared against the in-heap path byte for byte.
func testBuildConfig(peers int) BuildConfig {
	return BuildConfig{
		Catalog: catalog.Config{
			Seed: 11, Peers: peers, UniqueObjects: peers * 20, ReplicaAlpha: 2.45,
			VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
		},
		Network: func() gnet.Config {
			cfg := gnet.DefaultConfig(11)
			cfg.FirewalledFrac = 0.1
			return cfg
		}(),
	}
}

// TestShardedByteIdentical is the central identity gate: BuildSharded must
// produce exactly the bytes Save produces from the equivalent in-heap
// build — at every shard size, including shards much smaller than the
// network and a single shard holding everything.
func TestShardedByteIdentical(t *testing.T) {
	const peers = 150
	nw := buildNet(t, peers)
	_, heapPath := saveTo(t, nw)
	want, err := os.ReadFile(heapPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range []int{1, 7, 64, peers, 10 * peers} {
		cfg := testBuildConfig(peers)
		cfg.ShardSize = shard
		path := filepath.Join(t.TempDir(), "sharded.qcsnap")
		stats, err := BuildSharded(path, cfg)
		if err != nil {
			t.Fatalf("shard=%d: %v", shard, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shard=%d: sharded snapshot (%d bytes) differs from in-heap save (%d bytes)",
				shard, len(got), len(want))
		}
		if stats.FileBytes != int64(len(got)) {
			t.Fatalf("shard=%d: stats report %d bytes, file has %d", shard, stats.FileBytes, len(got))
		}
		if stats.Peers != peers || stats.Placements == 0 || stats.DictTerms == 0 {
			t.Fatalf("shard=%d: implausible stats %+v", shard, stats)
		}
		// Shards must actually shard: the bucket count follows the clamped
		// shard size.
		if wantShards := (peers + stats.ShardSize - 1) / stats.ShardSize; stats.Shards != wantShards {
			t.Fatalf("shard=%d: %d shards for effective size %d", shard, stats.Shards, stats.ShardSize)
		}
	}
}

// TestMappedRoundTrip: LoadMapped must reconstruct the same substrate as
// the copying loader — same index fingerprint, same dictionary — flag
// itself as borrowed, resave to the identical file (the mapped fixed
// point), and release its mapping on Close.
func TestMappedRoundTrip(t *testing.T) {
	nw := buildNet(t, 150)
	want, err := nw.IndexChecksum()
	if err != nil {
		t.Fatal(err)
	}
	_, path := saveTo(t, nw)
	m, err := LoadMapped(path, 0)
	if err != nil {
		t.Fatalf("LoadMapped: %v", err)
	}
	if !m.Borrowed() {
		t.Fatal("mapped network does not report Borrowed")
	}
	got, err := m.IndexChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("mapped index checksum diverged: %#x vs %#x", got, want)
	}
	if m.TermDict().Checksum() != nw.TermDict().Checksum() {
		t.Fatal("mapped dictionary checksum diverged")
	}
	// Resave fixed point through the mapped views.
	resaved := filepath.Join(t.TempDir(), "resaved.qcsnap")
	if _, err := Save(resaved, m, 0); err != nil {
		t.Fatalf("Save over mapped network: %v", err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resaving a mapped network changed the bytes")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMappedFloodsIdentical floods a mapped restore against the original
// network: results must be byte-identical, and overlay mutation on the
// mapped network (which rewires heap neighbor arenas, never the mapping)
// must keep the underlying file pristine.
func TestMappedFloodsIdentical(t *testing.T) {
	a := buildNet(t, 150)
	_, path := saveTo(t, a)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadMapped(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctxA, ctxB := a.NewFloodCtx(), b.NewFloodCtx()
	flood := func(trial int) {
		origin := trial * 7 % len(a.Peers)
		var criteria string
		for _, p := range a.Peers {
			if len(p.Library) > trial%5 {
				criteria = p.Library[trial%5].Name
				break
			}
		}
		ra, err := ctxA.Flood(origin, criteria, 4, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := ctxB.Flood(origin, criteria, 4, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("trial %d diverged:\n%+v\nvs\n%+v", trial, ra, rb)
		}
	}
	for trial := 0; trial < 15; trial++ {
		flood(trial)
	}
	// Mutate the overlay identically on both sides and keep flooding: the
	// mapped network's neighbor lists are heap arenas, so this must work
	// and must not touch the mapping.
	for _, nw := range []*gnet.Network{a, b} {
		if !nw.DisconnectPeers(0, nw.Peers[0].Neighbors[0]) {
			t.Fatal("disconnect failed")
		}
		// The twins are identical, so this either succeeds on both or is a
		// duplicate edge on both; divergence would show up in the floods.
		_ = nw.ConnectPeers(0, len(nw.Peers)-1)
	}
	for trial := 15; trial < 25; trial++ {
		flood(trial)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("using a mapped network modified the snapshot file")
	}
}

// TestLoadMappedFailurePaths: every damage mode must surface its typed
// sentinel from the mapped path without crashing — and a version-1 file
// must be refused with ErrVersion (nothing in it is aligned for mapping)
// while LoadPreferMapped transparently falls back to the copying loader.
func TestLoadMappedFailurePaths(t *testing.T) {
	nw := buildNet(t, 80)
	_, path := saveTo(t, nw)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "mut.qcsnap")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	expect := func(t *testing.T, p string, want error) {
		t.Helper()
		if _, err := LoadMapped(p, 0); err == nil {
			t.Fatal("LoadMapped accepted damaged bytes")
		} else if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		} else {
			t.Logf("rejected with: %v", err)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		expect(t, write(t, pristine[:len(pristine)/2]), ErrTruncated)
	})
	t.Run("tiny file", func(t *testing.T) {
		expect(t, write(t, pristine[:17]), ErrTruncated)
	})
	t.Run("section hash mismatch", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[len(b)-1] ^= 0x01
		p := write(t, b)
		expect(t, p, ErrFingerprint)
		expect(t, p, ErrCorrupt) // v2 hash damage matches both sentinels
	})
	t.Run("directory hash mismatch", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[dirOff+8] ^= 0x01 // first section's recorded offset
		expect(t, write(t, b), ErrFingerprint)
	})
	t.Run("trailing garbage", func(t *testing.T) {
		expect(t, write(t, append(append([]byte(nil), pristine...), 0)), ErrCorrupt)
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[0] ^= 0xff
		expect(t, write(t, b), ErrFormat)
	})

	t.Run("v1 file", func(t *testing.T) {
		st, err := nw.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "v1.qcsnap")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := writeSnapshotV1(f, st); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		expect(t, p, ErrVersion)

		// The copying loader still reads it…
		v1, err := Load(p, 0)
		if err != nil {
			t.Fatalf("Load(v1): %v", err)
		}
		wantSum, err := nw.IndexChecksum()
		if err != nil {
			t.Fatal(err)
		}
		gotSum, err := v1.IndexChecksum()
		if err != nil {
			t.Fatal(err)
		}
		if gotSum != wantSum {
			t.Fatal("v1 round trip changed the index checksum")
		}
		// …and LoadPreferMapped falls back to it transparently.
		pm, mapped, err := LoadPreferMapped(p, 0)
		if err != nil {
			t.Fatalf("LoadPreferMapped(v1): %v", err)
		}
		if mapped || pm.Borrowed() {
			t.Fatal("v1 file claimed the mapped path")
		}
	})

	t.Run("prefer mapped on v2", func(t *testing.T) {
		pm, mapped, err := LoadPreferMapped(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer pm.Close()
		if !mapped || !pm.Borrowed() {
			t.Fatal("v2 file did not take the mapped path")
		}
	})
}
