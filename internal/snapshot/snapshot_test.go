package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/rng"
)

// buildNet constructs a small catalog-backed network, the snapshot
// package's only supported substrate.
func buildNet(t *testing.T, peers int) *gnet.Network {
	t.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed: 11, Peers: peers, UniqueObjects: peers * 20, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gnet.DefaultConfig(11)
	cfg.FirewalledFrac = 0.1
	nw, err := gnet.NewFromCatalog(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// saveTo round-trips nw through a snapshot file and returns the loaded
// twin plus the file path.
func saveTo(t *testing.T, nw *gnet.Network) (*gnet.Network, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.qcsnap")
	n, err := Save(path, nw, 0)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("Save reported %d bytes, file has %d", n, fi.Size())
	}
	back, err := Load(path, 0)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return back, path
}

// TestRoundTripIndexChecksum pins the strongest cheap invariant: the
// decoded-index fingerprint (dictionary + every peer's term IDs, counts
// and posting values) survives the save/load cycle bit-for-bit.
func TestRoundTripIndexChecksum(t *testing.T) {
	nw := buildNet(t, 150)
	want, err := nw.IndexChecksum()
	if err != nil {
		t.Fatal(err)
	}
	back, _ := saveTo(t, nw)
	got, err := back.IndexChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("index checksum diverged: %#x vs %#x", got, want)
	}
	if back.TermDict().Checksum() != nw.TermDict().Checksum() {
		t.Fatal("dictionary checksum diverged")
	}
	ws, err := nw.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	gs, err := back.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	// HeapBytes differs only by the construction map the fresh network
	// already dropped via Compact; everything structural must match.
	ws.HeapBytes, gs.HeapBytes = 0, 0
	if ws != gs {
		t.Fatalf("index stats diverged:\n%+v\nvs\n%+v", gs, ws)
	}
}

// TestRoundTripFloodsIdentical floods the restored network and the
// original across plain, QRP and lossy configurations; every result must
// be byte-identical — the restored substrate is the built substrate.
func TestRoundTripFloodsIdentical(t *testing.T) {
	for _, mode := range []string{"plain", "qrp", "lossy"} {
		t.Run(mode, func(t *testing.T) {
			a := buildNet(t, 150)
			b, _ := saveTo(t, a)
			switch mode {
			case "qrp":
				for _, nw := range []*gnet.Network{a, b} {
					if err := nw.EnableQRP(16); err != nil {
						t.Fatal(err)
					}
				}
			case "lossy":
				a.SetFaults(faults.New(faults.Config{Seed: 3, MessageLoss: 0.25}))
				b.SetFaults(faults.New(faults.Config{Seed: 3, MessageLoss: 0.25}))
			}
			ctxA, ctxB := a.NewFloodCtx(), b.NewFloodCtx()
			for trial := 0; trial < 25; trial++ {
				origin := trial * 7 % len(a.Peers)
				var criteria string
				for _, p := range a.Peers {
					if len(p.Library) > trial%5 {
						criteria = p.Library[trial%5].Name
						break
					}
				}
				ra, err := ctxA.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				rb, err := ctxB.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("%s trial %d diverged:\n%+v\nvs\n%+v", mode, trial, ra, rb)
				}
			}
		})
	}
}

// TestRoundTripTopologyIdentical compares identity, links, libraries and
// the firewalled mask peer by peer.
func TestRoundTripTopologyIdentical(t *testing.T) {
	nw := buildNet(t, 120)
	back, _ := saveTo(t, nw)
	if back.Config != nw.Config {
		t.Fatalf("config diverged: %+v vs %+v", back.Config, nw.Config)
	}
	if len(back.Peers) != len(nw.Peers) {
		t.Fatalf("peer count %d vs %d", len(back.Peers), len(nw.Peers))
	}
	for i, p := range nw.Peers {
		q := back.Peers[i]
		if q.ID != p.ID || q.Addr != p.Addr || q.Ultrapeer != p.Ultrapeer || q.ServentID != p.ServentID {
			t.Fatalf("peer %d identity diverged", i)
		}
		if !reflect.DeepEqual(q.Neighbors, p.Neighbors) {
			t.Fatalf("peer %d neighbors diverged", i)
		}
		if !reflect.DeepEqual(q.Library, p.Library) {
			t.Fatalf("peer %d library diverged", i)
		}
		if back.Firewalled(i) != nw.Firewalled(i) {
			t.Fatalf("peer %d firewalled bit diverged", i)
		}
	}
}

// TestCorruptionFailsLoudly exercises every typed failure mode: foreign
// bytes, a future version, truncation, structural damage and content
// damage must all refuse to produce a network, each with its sentinel.
func TestCorruptionFailsLoudly(t *testing.T) {
	nw := buildNet(t, 80)
	_, path := saveTo(t, nw)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, f func(b []byte) []byte, want error) {
		t.Helper()
		b := f(append([]byte(nil), pristine...))
		mut := filepath.Join(t.TempDir(), "mut.qcsnap")
		if err := os.WriteFile(mut, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(mut, 0)
		if err == nil {
			t.Fatal("Load accepted a damaged snapshot")
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
		t.Logf("rejected with: %v", err)
	}

	t.Run("bad magic", func(t *testing.T) {
		mutate(t, func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrFormat)
	})
	t.Run("future version", func(t *testing.T) {
		mutate(t, func(b []byte) []byte { b[6] = Version + 1; return b }, ErrVersion)
	})
	t.Run("truncated", func(t *testing.T) {
		mutate(t, func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated)
	})
	t.Run("missing trailer", func(t *testing.T) {
		mutate(t, func(b []byte) []byte { return b[:len(b)-10] }, ErrTruncated)
	})
	t.Run("flipped content byte", func(t *testing.T) {
		// Deep inside the payload: parses fine structurally (raw arena
		// bytes), so only the fingerprint can catch it — and must.
		mutate(t, func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, nil)
	})
	t.Run("flipped trailer byte", func(t *testing.T) {
		mutate(t, func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrFingerprint)
	})
	t.Run("trailing garbage", func(t *testing.T) {
		mutate(t, func(b []byte) []byte { return append(b, 0) }, ErrCorrupt)
	})
}

// TestSaveRejectsLegacyNetworks: the legacy string index has no shared
// dictionary to persist; Save must refuse rather than write a partial
// snapshot.
func TestSaveRejectsLegacyNetworks(t *testing.T) {
	nw := buildNet(t, 80)
	nw.UseLegacyStringIndex()
	if _, err := Save(filepath.Join(t.TempDir(), "x.qcsnap"), nw, 0); err == nil {
		t.Fatal("Save accepted a legacy-index network")
	}
}
