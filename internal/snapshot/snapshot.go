// Package snapshot persists a fully built gnet.Network — topology,
// libraries, the interned term dictionary and every peer's compressed
// posting index — to a versioned, fingerprinted flat file, and restores it
// in a fraction of the time a fresh catalog + network + index build takes.
//
// The motivation is paper-scale iteration: the ScaleFull population
// (37,572 peers, 8.1M objects, 118M postings) costs minutes of
// single-core construction that every experiment process pays again
// before its first flood. A snapshot pays that cost once; later runs
// deserialize the finished substrate and only rebuild what is cheap and
// derived (QRP hash products, membership filters, the global
// term-frequency table). A restored network floods, crawls and serves
// byte-identically to the one it was exported from.
//
// # File formats
//
// This build writes format version 2 — an aligned, per-section-hashed
// layout designed for zero-copy mmap loading (see v2.go for the layout and
// the streaming Writer the sharded builder uses). Version-1 files, the
// varint-framed format earlier builds wrote, are still read by Load via
// the original copying decoder:
//
//	"QCSNAP"  6-byte magic
//	u16le     format version (1)
//	u8        section count
//	sections  each: [u8 kind][u64le payload length][payload]
//	          kinds, in required order: meta, dict, topology,
//	          libraries, indexes
//	32 bytes  SHA-256 over everything above (magic through last section)
//
// Both formats refuse to return a network over damaged bytes: v1 hashes
// the whole file against its trailer, v2 verifies each section against its
// directory digest before decoding it. Every failure mode has a typed
// sentinel error: ErrFormat for foreign files, ErrVersion for snapshots
// written by an unreadable format revision, ErrTruncated for short files,
// ErrCorrupt for structural damage and ErrFingerprint for content damage
// (v2 hash mismatches match both ErrFingerprint and ErrCorrupt).
package snapshot

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"unsafe"

	"querycentric/internal/dict"
	"querycentric/internal/gnet"
	"querycentric/internal/vpost"
)

// Version is the snapshot format revision this build writes. Load also
// reads version-1 files; LoadMapped requires version 2.
const Version = 2

// magic identifies a snapshot file.
const magic = "QCSNAP"

// Typed failure modes; wrap details, so errors.Is works on all of them.
var (
	// ErrFormat: the file is not a QCSNAP snapshot at all.
	ErrFormat = errors.New("snapshot: not a QCSNAP file")
	// ErrVersion: the file is a snapshot from a different format revision.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated: the file ends before the format says it should.
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrCorrupt: a section's payload violates the format's invariants.
	ErrCorrupt = errors.New("snapshot: corrupt section")
	// ErrFingerprint: the trailing SHA-256 does not match the content.
	ErrFingerprint = errors.New("snapshot: fingerprint mismatch")
)

// Section kinds, in their required file order.
const (
	secMeta = iota + 1
	secDict
	secTopology
	secLibraries
	secIndexes
	numSections = 5
)

// Save exports nw (building its indexes first if needed) and writes the
// snapshot to path, atomically: the bytes land in path+".tmp" and are
// renamed into place only after a successful sync-free close. Returns the
// file size in bytes.
func Save(path string, nw *gnet.Network, workers int) (int64, error) {
	if nw.TermDict() != nil {
		// Build any still-lazy indexes over the caller's worker budget
		// first; ExportState's own build call then finds everything done.
		if err := nw.BuildIndexes(workers); err != nil {
			return 0, fmt.Errorf("snapshot: %w", err)
		}
	}
	st, err := nw.ExportState()
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := writeSnapshotV2(f, st)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// Load reads a snapshot and reconstructs the network, copying everything
// onto the heap. Both format versions are accepted: version-2 files are
// read whole and verified section by section, version-1 files go through
// the original streaming decoder and whole-file fingerprint. No network is
// returned over bytes that fail verification. Derived structures
// (membership filters, QRP products, global term frequencies) are rebuilt
// over up to `workers` goroutines.
func Load(path string, workers int) (*gnet.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	v, err := sniffVersion(f)
	if err != nil {
		return nil, err
	}
	var st *gnet.NetworkState
	switch v {
	case 1:
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		st, err = readSnapshotV1(bufio.NewReaderSize(f, 1<<20))
	case Version:
		var data []byte
		data, err = readFileBytes(f)
		if err == nil {
			st, err = parseV2(data)
		}
	default:
		err = fmt.Errorf("%w: file has version %d, this build reads 1 and %d", ErrVersion, v, Version)
	}
	if err != nil {
		return nil, err
	}
	nw, err := gnet.NewFromState(st, workers)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nw, nil
}

// LoadMapped reconstructs a network over a read-only memory mapping of a
// version-2 snapshot: file names, posting arenas, skip arrays and the
// dictionary arena stay views into the mapping (zero-copy; the kernel
// pages them in on demand), while mutable and derived structures are built
// fresh on the heap. The returned network owns the mapping — call its
// Close when done with it; until then the views must outlive any use.
// Version-1 files cannot be mapped (nothing in them is aligned) and return
// ErrVersion; callers that want transparent fallback use LoadPreferMapped.
func LoadMapped(path string, workers int) (*gnet.Network, error) {
	data, backing, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	st, err := parseV2(data)
	if err != nil {
		backing.Close()
		if errors.Is(err, ErrVersion) {
			return nil, fmt.Errorf("%w (LoadMapped reads only version %d; use Load)", err, Version)
		}
		return nil, err
	}
	st.Borrowed = true
	st.Backing = backing
	nw, err := gnet.NewFromState(st, workers)
	if err != nil {
		backing.Close()
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nw, nil
}

// LoadPreferMapped loads path via LoadMapped when the file's format
// supports it, falling back to the copying Load for version-1 files.
// mapped reports which path produced the network.
func LoadPreferMapped(path string, workers int) (nw *gnet.Network, mapped bool, err error) {
	nw, err = LoadMapped(path, workers)
	if err == nil {
		return nw, true, nil
	}
	if !errors.Is(err, ErrVersion) {
		return nil, false, err
	}
	nw, err = Load(path, workers)
	return nw, false, err
}

// sniffVersion reads the magic and version from the header shared by both
// formats (the first 9 bytes are layout-compatible).
func sniffVersion(f *os.File) (uint16, error) {
	var head [9]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	if string(head[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w (bad magic %q)", ErrFormat, head[:len(magic)])
	}
	return binary.LittleEndian.Uint16(head[len(magic):]), nil
}

// writeSnapshotV1 encodes st in the legacy version-1 framing (retained so
// tests can produce v1 files and pin the compatibility path). Each section
// is encoded twice: once against a counting sink to learn its payload
// length, then for real — sections can be streamed with exact length
// prefixes and no whole-section buffering.
func writeSnapshotV1(f io.Writer, st *gnet.NetworkState) (int64, error) {
	h := sha256.New()
	bw := bufio.NewWriterSize(f, 1<<20)
	w := &writer{w: io.MultiWriter(bw, h)}
	w.bytes([]byte(magic))
	w.u16(1)
	w.u8(numSections)
	sections := []struct {
		kind byte
		enc  func(*writer, *gnet.NetworkState)
	}{
		{secMeta, encodeMeta},
		{secDict, encodeDict},
		{secTopology, encodeTopology},
		{secLibraries, encodeLibraries},
		{secIndexes, encodeIndexes},
	}
	for _, s := range sections {
		var count writer
		count.w = io.Discard
		s.enc(&count, st)
		w.u8(s.kind)
		w.u64(uint64(count.n))
		before := w.n
		s.enc(w, st)
		if w.err == nil && w.n-before != count.n {
			return 0, fmt.Errorf("snapshot: internal error: section %d measured %d bytes, wrote %d",
				s.kind, count.n, w.n-before)
		}
	}
	if w.err != nil {
		return 0, w.err
	}
	// The fingerprint trailer covers every byte written so far; it is not
	// hashed itself (it could not cover its own value).
	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return w.n + sha256.Size, nil
}

// readSnapshotV1 decodes a version-1 snapshot into a NetworkState,
// verifying the trailing whole-file fingerprint before returning.
func readSnapshotV1(br *bufio.Reader) (*gnet.NetworkState, error) {
	h := sha256.New()
	head := make([]byte, len(magic)+2+1)
	if err := readFullHashed(br, h, head); err != nil {
		return nil, err
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w (bad magic %q)", ErrFormat, head[:len(magic)])
	}
	if v := binary.LittleEndian.Uint16(head[len(magic):]); v != 1 {
		return nil, fmt.Errorf("%w: file has version %d, this decoder reads 1", ErrVersion, v)
	}
	if n := head[len(magic)+2]; n != numSections {
		return nil, fmt.Errorf("%w: %d sections, want %d", ErrCorrupt, n, numSections)
	}
	st := &gnet.NetworkState{}
	nPeers := 0
	var hdr [9]byte
	for want := byte(secMeta); want <= secIndexes; want++ {
		if err := readFullHashed(br, h, hdr[:]); err != nil {
			return nil, err
		}
		if hdr[0] != want {
			return nil, fmt.Errorf("%w: section %d where %d expected", ErrCorrupt, hdr[0], want)
		}
		size := binary.LittleEndian.Uint64(hdr[1:])
		const maxSection = 1 << 40 // refuse absurd lengths before allocating
		if size > maxSection {
			return nil, fmt.Errorf("%w: section %d claims %d bytes", ErrCorrupt, want, size)
		}
		payload := make([]byte, size)
		if err := readFullHashed(br, h, payload); err != nil {
			return nil, err
		}
		r := &reader{b: payload, section: int(want)}
		switch want {
		case secMeta:
			nPeers = decodeMeta(r, st)
		case secDict:
			decodeDict(r, st)
		case secTopology:
			decodeTopology(r, st, nPeers)
		case secLibraries:
			decodeLibraries(r, st)
		case secIndexes:
			decodeIndexes(r, st)
		}
		if r.err != nil {
			return nil, r.err
		}
		if len(r.b) != 0 {
			return nil, fmt.Errorf("%w: section %d has %d trailing bytes", ErrCorrupt, want, len(r.b))
		}
	}
	var trailer [sha256.Size]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing fingerprint trailer (%v)", ErrTruncated, err)
	}
	if !bytes.Equal(trailer[:], h.Sum(nil)) {
		return nil, fmt.Errorf("%w: file carries %x, content hashes to %x",
			ErrFingerprint, trailer[:8], h.Sum(nil)[:8])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: data after fingerprint trailer", ErrCorrupt)
	}
	return st, nil
}

// readFullHashed fills buf from r and folds it into the fingerprint.
func readFullHashed(r io.Reader, h hash.Hash, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	h.Write(buf)
	return nil
}

// ---------------------------------------------------------------------------
// Section encoders/decoders. Encoders write through *writer (error-latched,
// usable as a counting sink); decoders consume a *reader over the payload.

func encodeMeta(w *writer, st *gnet.NetworkState) {
	w.u64(st.Config.Seed)
	w.u64(math.Float64bits(st.Config.UltrapeerFrac))
	w.u64(uint64(st.Config.UltraDegree))
	w.u64(uint64(st.Config.FlatDegree))
	w.u64(math.Float64bits(st.Config.FirewalledFrac))
	w.u64(uint64(len(st.Peers)))
}

// decodeMeta returns the declared peer count; the PeerState slice is
// allocated in decodeTopology, where the payload length can vouch for it.
func decodeMeta(r *reader, st *gnet.NetworkState) int {
	st.Config.Seed = r.u64()
	st.Config.UltrapeerFrac = math.Float64frombits(r.u64())
	st.Config.UltraDegree = int(r.u64())
	st.Config.FlatDegree = int(r.u64())
	st.Config.FirewalledFrac = math.Float64frombits(r.u64())
	n := r.u64()
	const maxPeers = 1 << 28
	if r.err == nil && n > maxPeers {
		r.fail("peer count %d out of range", n)
		return 0
	}
	return int(n)
}

// encodeDict stores the term arena raw plus per-term lengths (offsets are
// the running sum, so deltas are the natural varint form).
func encodeDict(w *writer, st *gnet.NetworkState) {
	w.uvarint(uint64(len(st.DictOff) - 1))
	for i := 1; i < len(st.DictOff); i++ {
		w.uvarint(uint64(st.DictOff[i] - st.DictOff[i-1]))
	}
	w.uvarint(uint64(len(st.DictBytes)))
	w.bytes(st.DictBytes)
}

func decodeDict(r *reader, st *gnet.NetworkState) {
	n := r.uvarint()
	// Every term costs at least one length byte, so the remaining payload
	// bounds the count — a corrupt varint cannot force a huge allocation.
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("dictionary claims %d terms in a %d-byte remainder", n, len(r.b))
		return
	}
	off := make([]uint32, 1, n+1)
	var total uint64
	for i := uint64(0); i < n && r.err == nil; i++ {
		total += r.uvarint()
		if total > math.MaxUint32 {
			r.fail("dictionary arena overflows uint32 offsets")
			return
		}
		off = append(off, uint32(total))
	}
	arenaLen := r.uvarint()
	if r.err == nil && arenaLen != total {
		r.fail("dictionary arena is %d bytes but term lengths sum to %d", arenaLen, total)
		return
	}
	st.DictBytes = r.take(arenaLen)
	st.DictOff = off
}

func encodeTopology(w *writer, st *gnet.NetworkState) {
	fw := make([]byte, (len(st.Firewalled)+7)/8)
	for i, b := range st.Firewalled {
		if b {
			fw[i/8] |= 1 << (i % 8)
		}
	}
	w.bytes(fw)
	for i := range st.Peers {
		p := &st.Peers[i]
		var flags byte
		if p.Ultrapeer {
			flags |= 1
		}
		w.u8(flags)
		w.bytes(p.ServentID[:])
		w.uvarint(uint64(len(p.Neighbors)))
		for _, nb := range p.Neighbors {
			w.uvarint(uint64(nb))
		}
	}
}

func decodeTopology(r *reader, st *gnet.NetworkState, n int) {
	// Each peer costs ≥ 18 payload bytes (flags, GUID, degree varint)
	// beyond the bitset; verify before trusting the meta section's count
	// with an allocation.
	if minLen := uint64(n)*18 + uint64((n+7)/8); uint64(len(r.b)) < minLen {
		r.fail("%d peers need ≥ %d bytes, payload has %d", n, minLen, len(r.b))
		return
	}
	st.Peers = make([]gnet.PeerState, n)
	fw := r.take(uint64((n + 7) / 8))
	st.Firewalled = make([]bool, n)
	for i := range st.Firewalled {
		if r.err != nil {
			return
		}
		st.Firewalled[i] = fw[i/8]&(1<<(i%8)) != 0
	}
	for i := range st.Peers {
		p := &st.Peers[i]
		flags := r.u8()
		p.Ultrapeer = flags&1 != 0
		copy(p.ServentID[:], r.take(uint64(len(p.ServentID))))
		deg := r.uvarint()
		if r.err != nil {
			return
		}
		if deg > uint64(n) {
			r.fail("peer %d claims degree %d in a %d-peer network", i, deg, n)
			return
		}
		p.Neighbors = make([]int, deg)
		for j := range p.Neighbors {
			nb := r.uvarint()
			if nb >= uint64(n) {
				r.fail("peer %d links to nonexistent peer %d", i, nb)
				return
			}
			// Neighbor order is part of the state: floods forward in list
			// order, so reordering would change message interleaving.
			p.Neighbors[j] = int(nb)
		}
	}
}

func encodeLibraries(w *writer, st *gnet.NetworkState) {
	for i := range st.Peers {
		lib := st.Peers[i].Library
		w.uvarint(uint64(len(lib)))
		for _, f := range lib {
			w.uvarint(uint64(f.Index))
			w.uvarint(uint64(f.Size))
			w.uvarint(uint64(len(f.Name)))
			w.bytes(unsafeBytes(f.Name))
		}
	}
}

func decodeLibraries(r *reader, st *gnet.NetworkState) {
	for i := range st.Peers {
		nFiles := r.uvarint()
		if r.err != nil {
			return
		}
		if nFiles > uint64(len(r.b)) { // every file costs ≥ 1 payload byte
			r.fail("peer %d claims %d files in a %d-byte remainder", i, nFiles, len(r.b))
			return
		}
		lib := make([]gnet.File, nFiles)
		for j := range lib {
			lib[j].Index = r.u32varint()
			lib[j].Size = r.u32varint()
			nameLen := r.uvarint()
			// The name is a zero-copy view into the section payload: one
			// retained block for all of a snapshot's names, instead of
			// millions of small string allocations.
			lib[j].Name = unsafeString(r.take(nameLen))
		}
		st.Peers[i].Library = lib
	}
}

func encodeIndexes(w *writer, st *gnet.NetworkState) {
	for i := range st.Peers {
		ix := &st.Peers[i].Index
		w.uvarint(uint64(ix.NTerms))
		w.uvarint(uint64(ix.NPostings))
		prevF, prevO := uint64(0), uint64(0)
		for b := range ix.BlockFirst {
			w.uvarint(uint64(ix.BlockFirst[b]) - prevF)
			prevF = uint64(ix.BlockFirst[b])
			w.uvarint(uint64(ix.BlockOff[b]) - prevO)
			prevO = uint64(ix.BlockOff[b])
		}
		w.uvarint(uint64(len(ix.Arena)))
		w.bytes(ix.Arena)
	}
}

func decodeIndexes(r *reader, st *gnet.NetworkState) {
	for i := range st.Peers {
		ix := &st.Peers[i].Index
		nTerms := r.uvarint()
		nPostings := r.uvarint()
		if r.err != nil {
			return
		}
		const maxTermsPerPeer = 1 << 30
		if nTerms > maxTermsPerPeer || nPostings > math.MaxInt32 {
			r.fail("peer %d index claims %d terms / %d postings", i, nTerms, nPostings)
			return
		}
		ix.NTerms = int(nTerms)
		ix.NPostings = int(nPostings)
		nBlocks := (ix.NTerms + 15) / 16
		// Each block costs ≥ 2 payload bytes (two offset varints): bound
		// the skip-array allocations by what the payload can actually hold.
		if uint64(nBlocks)*2 > uint64(len(r.b)) {
			r.fail("peer %d claims %d blocks in a %d-byte remainder", i, nBlocks, len(r.b))
			return
		}
		if nBlocks > 0 {
			ix.BlockFirst = make([]dict.TermID, nBlocks)
			ix.BlockOff = make([]uint32, nBlocks)
		}
		prevF, prevO := uint64(0), uint64(0)
		for b := 0; b < nBlocks && r.err == nil; b++ {
			prevF += r.uvarint()
			prevO += r.uvarint()
			if prevF > math.MaxUint32 || prevO > math.MaxUint32 {
				r.fail("peer %d block %d offsets overflow", i, b)
				return
			}
			ix.BlockFirst[b] = dict.TermID(prevF)
			ix.BlockOff[b] = uint32(prevO)
		}
		arenaLen := r.uvarint()
		if r.err == nil && prevO >= arenaLen && nBlocks > 0 {
			r.fail("peer %d last block offset %d beyond %d-byte arena", i, prevO, arenaLen)
			return
		}
		// The arena is a view into the section payload: all of a
		// snapshot's posting arenas share one retained allocation.
		ix.Arena = r.take(arenaLen)
	}
}

// ---------------------------------------------------------------------------
// Low-level encode/decode plumbing.

// writer is an error-latched little-endian/varint encoder. With w.w set to
// io.Discard it doubles as the measuring pass that sizes section prefixes.
type writer struct {
	w   io.Writer
	n   int64
	err error
	buf [10]byte
}

func (w *writer) bytes(p []byte) {
	if w.err != nil {
		return
	}
	if w.w == io.Discard {
		w.n += int64(len(p))
		return
	}
	m, err := w.w.Write(p)
	w.n += int64(m)
	w.err = err
}

func (w *writer) u8(v byte) {
	w.buf[0] = v
	w.bytes(w.buf[:1])
}

func (w *writer) u16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.bytes(w.buf[:2])
}

func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.bytes(w.buf[:8])
}

func (w *writer) uvarint(v uint64) {
	w.bytes(vpost.AppendUvarint(w.buf[:0], v))
}

// reader consumes one section payload, latching the first error.
type reader struct {
	b       []byte
	section int
	err     error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w %d: %s", ErrCorrupt, r.section, fmt.Sprintf(format, args...))
	}
}

// take consumes n payload bytes as a zero-copy view.
func (r *reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("needs %d bytes, %d left", n, len(r.b))
		return nil
	}
	p := r.b[:n:n]
	r.b = r.b[n:]
	return p
}

func (r *reader) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := vpost.Uvarint(r.b)
	if n <= 0 {
		r.fail("bad varint (%d)", n)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) u32varint() uint32 {
	v := r.uvarint()
	if v > math.MaxUint32 {
		r.fail("varint %d overflows uint32", v)
		return 0
	}
	return uint32(v)
}

// unsafeBytes views a string's bytes without copying (write-side only; the
// writer never mutates what it is handed).
func unsafeBytes(s string) []byte {
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// unsafeString views payload bytes as a string without copying. The
// payload block is never mutated after decode, so the strings are safe.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
