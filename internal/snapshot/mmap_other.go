//go:build !unix

package snapshot

import (
	"io"
	"os"
)

// mapFile on platforms without a wired mmap falls back to reading the file
// into one heap buffer: LoadMapped keeps its contract (views into a single
// backing block, explicit Close) without the zero-copy benefit.
func mapFile(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	data, err := readFileBytes(f)
	if err != nil {
		return nil, nil, err
	}
	return data, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
