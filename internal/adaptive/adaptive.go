// Package adaptive is the paper's constructive answer: a query-centric
// overlay that watches its own query stream and adapts both wiring and
// placement to it. Two mechanisms run on a shared observation plane:
//
//   - Rewiring. Each peer keeps a bounded candidate list of peers that
//     answered its recent queries (learned from QueryHit answer paths) and
//     periodically swaps its least-useful static edge — the neighbor that
//     forwarded the fewest answers — for its best candidate, under degree
//     caps. Repeat queries then start with one-hop probes to likely
//     answerers before paying for a flood.
//
//   - Replication. A windowed popularity sketch (obs.StreamSketch) tracks
//     the hot objects in the stream; the hot-but-rare ones — popular yet
//     frequently missed — receive new replicas each round, allocated by
//     internal/replication and placed by a configurable scheme (owner,
//     path, random, or square-root budgets).
//
// Both mechanisms are driven by QUERY popularity, never file popularity —
// the distinction the paper shows deployed overlays get wrong.
//
// Determinism discipline: measurement batches fan out over
// internal/parallel with per-query streams derived per the
// strategy.WorkloadStream contract, and their observations are folded in
// query order; all adaptation (topology and library mutation, sketch
// decay) runs single-threaded between batches on per-(round, peer)
// derived streams. Results are therefore byte-identical at any -workers
// value, and a System with AdaptInterval zero is inert: it issues exactly
// the floods a static network would, with identical results.
package adaptive

import (
	"fmt"

	"querycentric/internal/gnet"
	"querycentric/internal/obs"
	"querycentric/internal/parallel"
	"querycentric/internal/replication"
	"querycentric/internal/rng"
	"querycentric/internal/strategy"
)

// Scheme selects where new replicas are installed.
type Scheme string

// The replica-placement schemes. Owner installs at recent successful
// requesters (the classic "owner replication" of Gnutella downloads), Path
// along the reverse answer path (Freenet-style), Random at uniformly drawn
// peers, and Sqrt at random peers under a square-root (rather than
// proportional) budget split — the Cohen–Shenker optimum.
const (
	SchemeOwner  Scheme = "owner"
	SchemePath   Scheme = "path"
	SchemeRandom Scheme = "random"
	SchemeSqrt   Scheme = "sqrt"
)

// Schemes lists the valid placement schemes, for flag validation.
func Schemes() []string {
	return []string{string(SchemeOwner), string(SchemePath), string(SchemeRandom), string(SchemeSqrt)}
}

// Config shapes one adaptive overlay system.
type Config struct {
	// Seed drives the adaptation streams (rewire tie-breaks, random
	// placement). The workload stream is separate — RunWorkload's seed —
	// so the same system state can replay different workloads.
	Seed uint64
	// TTL is the flood time-to-live for every query.
	TTL int
	// AdaptInterval is the number of queries per measurement batch; one
	// adaptation round runs between batches. Zero disables adaptation
	// entirely — the system becomes an inert static-flood arm.
	AdaptInterval int
	// RewireBudget caps topology swaps per adaptation round (0 disables
	// rewiring).
	RewireBudget int
	// ReplicateBudget caps replica installs per adaptation round (0
	// disables replication).
	ReplicateBudget int
	// ReplScheme selects replica placement.
	ReplScheme Scheme
	// CandidateList bounds each peer's learned-answerer list.
	CandidateList int
	// ProbeCandidates is how many candidates a querying peer probes (one
	// message each) before falling back to a flood.
	ProbeCandidates int
	// HotListSize is the popularity sketch capacity.
	HotListSize int
	// MaxDegree and MinDegree bound peer degrees under rewiring: a swap
	// never raises a peer past MaxDegree or drops one below MinDegree.
	MaxDegree int
	// MinDegree is the floor a dropped neighbor must keep.
	MinDegree int
	// Workers bounds batch parallelism (0 = GOMAXPROCS).
	Workers int
	// Label is the strategy name reported by Name (default "adaptive").
	Label string
}

// DefaultConfig returns the tuning used by the query-centric experiment.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		TTL:             3,
		AdaptInterval:   64,
		RewireBudget:    8,
		ReplicateBudget: 8,
		ReplScheme:      SchemeSqrt,
		CandidateList:   6,
		ProbeCandidates: 2,
		HotListSize:     32,
		MaxDegree:       8,
		MinDegree:       2,
	}
}

// Object is one searchable object in the workload's universe. Holders
// optionally seeds the system's knowledge of existing replica locations
// (peer IDs) so replication never installs a duplicate at a known holder;
// holders learned from answers are added as the stream unfolds.
type Object struct {
	Name    string
	Size    uint32
	Holders []int32
}

// objState is the per-object observation fold: recent successful
// requesters (newest first), the last answer path, and known holders.
type objState struct {
	recentOrigins []int32
	lastPath      []int32
	holders       map[int32]struct{}
}

const recentOriginCap = 8

// System is an adaptive overlay over one gnet network. It implements
// strategy.Rewirer. A System is not safe for concurrent use; RunWorkload
// manages its own internal parallelism.
type System struct {
	nw      *gnet.Network
	objects []Object
	cfg     Config

	sketch *obs.StreamSketch
	cand   [][]int32         // per-peer candidate lists, best-first
	credit []map[int]float64 // per-peer answer credit by neighbor, lazily allocated
	objs   []objState

	round int
	log   []strategy.RewireDecision
	acc   accum

	rewireBase *rng.Source
	replBase   *rng.Source

	// Optional instrumentation (nil-safe obs handles).
	mRounds, mRewires, mReplicas, mProbeHits *obs.Counter
}

// accum is one RunWorkload call's running aggregate.
type accum struct {
	queries, found, probeHits int
	messages, hopsSum         int64
	rewires, replicas         int
}

// New builds an adaptive system over the network. The objects slice is the
// workload universe: RunWorkload's pick function returns indices into it.
func New(nw *gnet.Network, objects []Object, cfg Config) (*System, error) {
	if nw == nil || len(nw.Peers) == 0 {
		return nil, fmt.Errorf("adaptive: empty network")
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("adaptive: no objects")
	}
	if cfg.TTL < 1 {
		return nil, fmt.Errorf("adaptive: TTL must be at least 1, got %d", cfg.TTL)
	}
	if cfg.AdaptInterval < 0 || cfg.RewireBudget < 0 || cfg.ReplicateBudget < 0 ||
		cfg.CandidateList < 0 || cfg.ProbeCandidates < 0 {
		return nil, fmt.Errorf("adaptive: negative budget or capacity")
	}
	if cfg.AdaptInterval > 0 {
		switch cfg.ReplScheme {
		case SchemeOwner, SchemePath, SchemeRandom, SchemeSqrt:
		default:
			return nil, fmt.Errorf("adaptive: unknown replica scheme %q", cfg.ReplScheme)
		}
		if cfg.RewireBudget > 0 {
			if cfg.MinDegree < 1 {
				return nil, fmt.Errorf("adaptive: MinDegree must be at least 1, got %d", cfg.MinDegree)
			}
			if cfg.MaxDegree < cfg.MinDegree {
				return nil, fmt.Errorf("adaptive: MaxDegree %d below MinDegree %d", cfg.MaxDegree, cfg.MinDegree)
			}
		}
	}
	hot := cfg.HotListSize
	if hot < 1 {
		hot = 1
	}
	s := &System{
		nw:         nw,
		objects:    objects,
		cfg:        cfg,
		sketch:     obs.NewStreamSketch(hot),
		cand:       make([][]int32, len(nw.Peers)),
		credit:     make([]map[int]float64, len(nw.Peers)),
		objs:       make([]objState, len(objects)),
		rewireBase: rng.NewNamed(cfg.Seed, "adaptive/rewire"),
		replBase:   rng.NewNamed(cfg.Seed, "adaptive/replicate"),
	}
	for i, o := range objects {
		if o.Name == "" {
			return nil, fmt.Errorf("adaptive: object %d has no name", i)
		}
		if len(o.Holders) > 0 {
			s.objs[i].holders = make(map[int32]struct{}, len(o.Holders))
			for _, h := range o.Holders {
				s.objs[i].holders[h] = struct{}{}
			}
		}
	}
	return s, nil
}

// Instrument attaches counters for the system's adaptation activity. A nil
// registry detaches (the default): every handle is nil-safe.
func (s *System) Instrument(reg *obs.Registry) {
	s.mRounds = reg.Counter("adaptive_rounds_total")
	s.mRewires = reg.Counter("adaptive_rewires_total")
	s.mReplicas = reg.Counter("adaptive_replicas_total")
	s.mProbeHits = reg.Counter("adaptive_probe_hits_total")
}

// Name implements strategy.AdaptivePolicy.
func (s *System) Name() string {
	if s.cfg.Label != "" {
		return s.cfg.Label
	}
	return "adaptive"
}

// RewireLog returns every topology swap performed over the system's
// lifetime, in decision order (implements strategy.Rewirer).
func (s *System) RewireLog() []strategy.RewireDecision {
	return append([]strategy.RewireDecision(nil), s.log...)
}

// inert reports whether the system is in the static (no adaptation) mode.
func (s *System) inert() bool { return s.cfg.AdaptInterval <= 0 }

// RunWorkload implements strategy.AdaptivePolicy: queries are issued in
// batches of AdaptInterval with one adaptation round between consecutive
// batches; statistics cover this call only while adapted state (candidate
// lists, sketch, topology, replicas) persists across calls — run a warmup
// workload, then a measured one, to see steady-state behavior.
func (s *System) RunWorkload(queries int, pick func(r *rng.Source) int, seed uint64) (*strategy.Stats, error) {
	if queries < 1 {
		return nil, fmt.Errorf("adaptive: queries must be positive, got %d", queries)
	}
	s.acc = accum{}
	base := strategy.WorkloadStream(seed)
	interval := s.cfg.AdaptInterval
	if interval <= 0 {
		interval = queries
	}
	for start := 0; start < queries; start += interval {
		count := interval
		if start+count > queries {
			count = queries - start
		}
		if err := s.RunBatch(base, start, count, pick); err != nil {
			return nil, err
		}
		if !s.inert() && start+count < queries {
			s.AdaptRound()
		}
	}
	return s.takeStats(), nil
}

// takeStats snapshots and resets the running aggregate.
func (s *System) takeStats() *strategy.Stats {
	a := s.acc
	s.acc = accum{}
	st := &strategy.Stats{
		Queries:  a.queries,
		Rewires:  a.rewires,
		Replicas: a.replicas,
	}
	if a.queries > 0 {
		st.Success = float64(a.found) / float64(a.queries)
		st.MeanMessages = float64(a.messages) / float64(a.queries)
	}
	if a.found > 0 {
		st.ShortcutHits = float64(a.probeHits) / float64(a.found)
		st.MeanHops = float64(a.hopsSum) / float64(a.found)
	}
	return st
}

// queryRecord is one query's worker-side observation, folded in query
// order after the batch barrier.
type queryRecord struct {
	obj       int32
	origin    int32
	found     bool
	probeHit  bool
	localHit  bool
	messages  int
	hops      int
	results   int
	answerers []int32 // nearest hit peers, nearest first
	path      []int32 // answer path of the nearest hit (origin..answerer)
}

type batchScratch struct {
	ctx *gnet.FloodCtx
}

// RunBatch issues queries [start, start+count) of the workload in parallel
// and folds their observations in query order. Exposed (alongside
// AdaptRound) so an event engine can schedule measurement and adaptation
// as alternating simulated-time events; RunWorkload is the inline driver.
func (s *System) RunBatch(base *rng.Source, start, count int, pick func(r *rng.Source) int) error {
	capture := !s.inert() && (s.cfg.RewireBudget > 0 || s.cfg.ReplicateBudget > 0)
	recs, err := parallel.MapWith(s.cfg.Workers, count,
		func() *batchScratch {
			sc := &batchScratch{ctx: s.nw.NewFloodCtx()}
			sc.ctx.SetPathCapture(capture)
			return sc
		},
		func(sc *batchScratch, i int) (queryRecord, error) {
			return s.runQuery(sc, base, start+i, pick, capture)
		})
	if err != nil {
		return err
	}
	for i := range recs {
		s.fold(&recs[i])
	}
	return nil
}

// runQuery executes one query on a worker: local check, candidate probes,
// then flood. All draws come from the query's derived stream in a fixed
// order, and all shared state read here (candidate lists, libraries,
// topology) is frozen for the duration of the batch.
func (s *System) runQuery(sc *batchScratch, base *rng.Source, qi int, pick func(r *rng.Source) int, capture bool) (queryRecord, error) {
	r := strategy.QueryStream(base, qi)
	n := len(s.nw.Peers)
	origin := r.Intn(n)
	obj := pick(r)
	if obj < 0 || obj >= len(s.objects) {
		return queryRecord{}, fmt.Errorf("adaptive: pick returned object %d of %d", obj, len(s.objects))
	}
	criteria := s.objects[obj].Name
	rec := queryRecord{obj: int32(obj), origin: int32(origin)}

	if !s.inert() {
		// A peer does not query the network for an object it already holds
		// (the payoff of owner replication).
		if got := s.nw.Peers[origin].Match(criteria); len(got) > 0 {
			rec.found, rec.localHit = true, true
			rec.results = len(got)
			return rec, nil
		}
		// Probe learned answerers — one message each — before flooding.
		cands := s.cand[origin]
		for j := 0; j < len(cands) && j < s.cfg.ProbeCandidates; j++ {
			rec.messages++
			if got := s.nw.Peers[cands[j]].Match(criteria); len(got) > 0 {
				rec.found, rec.probeHit = true, true
				rec.hops = 1
				rec.results = len(got)
				rec.answerers = []int32{cands[j]}
				return rec, nil
			}
		}
	}

	res, err := sc.ctx.Flood(origin, criteria, s.cfg.TTL, r)
	if err != nil {
		return queryRecord{}, err
	}
	rec.messages += res.Messages
	rec.results += res.TotalResults
	if len(res.Hits) == 0 {
		return rec, nil
	}
	rec.found = true
	// Nearest answer first: hits arrive in flood (ring) order, so sorting
	// by (hops, peer) is a stable refinement of an already deterministic
	// order.
	best := 0
	for i, h := range res.Hits {
		if h.Hops < res.Hits[best].Hops || (h.Hops == res.Hits[best].Hops && h.PeerID < res.Hits[best].PeerID) {
			best = i
		}
	}
	rec.hops = res.Hits[best].Hops
	rec.answerers = append(rec.answerers, int32(res.Hits[best].PeerID))
	for _, h := range res.Hits {
		if h.PeerID != res.Hits[best].PeerID && len(rec.answerers) < s.cfg.CandidateList {
			rec.answerers = append(rec.answerers, int32(h.PeerID))
		}
	}
	if capture {
		rec.path = append(rec.path, int32sOf(sc.ctx.AnswerPath(res.Hits[best].PeerID))...)
	}
	return rec, nil
}

func int32sOf(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

// fold merges one query's observation into the system state. Runs
// single-threaded, in query order.
func (s *System) fold(rec *queryRecord) {
	s.acc.queries++
	s.acc.messages += int64(rec.messages)
	if rec.found {
		s.acc.found++
		s.acc.hopsSum += int64(rec.hops)
		if rec.probeHit {
			s.acc.probeHits++
			s.mProbeHits.Inc()
		}
	}
	if s.inert() {
		return
	}
	s.sketch.Observe(rec.obj, rec.found, rec.results)
	for _, a := range rec.answerers {
		s.addCandidate(int(rec.origin), a)
	}
	o := &s.objs[rec.obj]
	if rec.found && !rec.localHit {
		for _, a := range rec.answerers {
			if o.holders == nil {
				o.holders = map[int32]struct{}{}
			}
			o.holders[a] = struct{}{}
		}
		o.recentOrigins = pushFront(o.recentOrigins, rec.origin, recentOriginCap)
	}
	if len(rec.path) >= 2 {
		o.lastPath = rec.path
		// Credit the neighbor that forwarded the answer back to the origin.
		first := int(rec.path[1])
		m := s.credit[rec.origin]
		if m == nil {
			m = map[int]float64{}
			s.credit[rec.origin] = m
		}
		m[first]++
	}
}

// addCandidate inserts answerer a into peer's candidate list, move-to-front
// on re-observation, capped at CandidateList. Current neighbors and the
// peer itself are not candidates.
func (s *System) addCandidate(peer int, a int32) {
	if s.cfg.CandidateList == 0 || int(a) == peer {
		return
	}
	for _, nb := range s.nw.Peers[peer].Neighbors {
		if int32(nb) == a {
			return
		}
	}
	s.cand[peer] = pushFront(s.cand[peer], a, s.cfg.CandidateList)
}

// pushFront prepends v (move-to-front if present), capped at max.
func pushFront(xs []int32, v int32, max int) []int32 {
	for i, x := range xs {
		if x == v {
			copy(xs[1:i+1], xs[:i])
			xs[0] = v
			return xs
		}
	}
	xs = append(xs, 0)
	copy(xs[1:], xs)
	xs[0] = v
	if len(xs) > max {
		xs = xs[:max]
	}
	return xs
}

// AdaptRound runs one single-threaded adaptation round — rewiring, then
// replication, then decay — and returns the number of swaps and installs
// performed. Callers must not run it concurrently with RunBatch (the
// phase-alternation contract of gnet topology and library mutation).
func (s *System) AdaptRound() (rewires, replicas int) {
	s.round++
	s.mRounds.Inc()
	if s.cfg.RewireBudget > 0 {
		rewires = s.rewireRound()
	}
	if s.cfg.ReplicateBudget > 0 {
		replicas = s.replicateRound()
	}
	s.sketch.Decay()
	for _, m := range s.credit {
		for k := range m {
			m[k] /= 2
			if m[k] < 0.25 {
				delete(m, k)
			}
		}
	}
	s.acc.rewires += rewires
	s.acc.replicas += replicas
	s.mRewires.Add(int64(rewires))
	s.mReplicas.Add(int64(replicas))
	return rewires, replicas
}

// rewireRound performs up to RewireBudget swaps: peers in ascending ID
// order swap their least-credited droppable neighbor for their best
// eligible candidate. Tie-breaks among equally worthless neighbors draw
// from the per-(round, peer) derived stream, so the decision sequence is a
// pure function of (seed, round, folded observations).
func (s *System) rewireRound() int {
	swaps := 0
	for peer := 0; peer < len(s.nw.Peers) && swaps < s.cfg.RewireBudget; peer++ {
		cands := s.cand[peer]
		if len(cands) == 0 {
			continue
		}
		add := -1
		for _, c := range cands {
			if len(s.nw.Peers[c].Neighbors)+1 <= s.cfg.MaxDegree && !s.connected(peer, int(c)) {
				add = int(c)
				break
			}
		}
		if add < 0 {
			continue
		}
		// Least-credited neighbor that can afford to lose the edge.
		var ties []int
		worst := -1.0
		for _, nb := range s.nw.Peers[peer].Neighbors {
			if nb == add || len(s.nw.Peers[nb].Neighbors)-1 < s.cfg.MinDegree {
				continue
			}
			cr := s.credit[peer][nb]
			switch {
			case worst < 0 || cr < worst:
				worst, ties = cr, ties[:0]
				ties = append(ties, nb)
			case cr == worst:
				ties = append(ties, nb)
			}
		}
		if len(ties) == 0 {
			continue
		}
		pr := s.rewireBase.Derive(fmt.Sprintf("%d/%d", s.round, peer))
		drop := ties[pr.Intn(len(ties))]
		if !s.nw.DisconnectPeers(peer, drop) {
			continue
		}
		if err := s.nw.ConnectPeers(peer, add); err != nil {
			// Undo rather than leave the peer short an edge; cannot happen
			// given the checks above, kept as an invariant guard.
			s.nw.ConnectPeers(peer, drop)
			continue
		}
		s.dropCandidate(peer, int32(add))
		delete(s.credit[peer], drop)
		s.log = append(s.log, strategy.RewireDecision{Round: s.round, Peer: peer, Dropped: drop, Added: add})
		swaps++
	}
	return swaps
}

func (s *System) connected(a, b int) bool {
	for _, nb := range s.nw.Peers[a].Neighbors {
		if nb == b {
			return true
		}
	}
	return false
}

func (s *System) dropCandidate(peer int, v int32) {
	xs := s.cand[peer]
	for i, x := range xs {
		if x == v {
			s.cand[peer] = append(xs[:i], xs[i+1:]...)
			return
		}
	}
}

// replicateRound installs up to ReplicateBudget new replicas of the
// hot-but-rare objects: sketch entries with at least one recent miss,
// hottest first, with the budget split by internal/replication
// (proportional for owner/path/random, square-root for sqrt) and placement
// per the configured scheme.
func (s *System) replicateRound() int {
	top := s.sketch.Top(s.cfg.HotListSize)
	rare := top[:0]
	for _, e := range top {
		if e.Hits < e.Count {
			rare = append(rare, e)
		}
	}
	if len(rare) == 0 {
		return 0
	}
	if len(rare) > s.cfg.ReplicateBudget {
		rare = rare[:s.cfg.ReplicateBudget]
	}
	strat := replication.Proportional
	if s.cfg.ReplScheme == SchemeSqrt {
		strat = replication.SquareRoot
	}
	pops := make([]float64, len(rare))
	for i, e := range rare {
		pops[i] = float64(e.Count)
	}
	counts, err := replication.Allocate(strat, pops, s.cfg.ReplicateBudget, len(s.nw.Peers))
	if err != nil {
		return 0 // degenerate inputs already clamped upstream; never fatal mid-round
	}
	installed := 0
	for i, e := range rare {
		installed += s.placeReplicas(int(e.Key), counts[i])
	}
	return installed
}

// placeReplicas installs up to k copies of object obj at scheme-selected
// peers, skipping known holders, and returns the number installed.
func (s *System) placeReplicas(obj, k int) int {
	o := &s.objs[obj]
	name, size := s.objects[obj].Name, s.objects[obj].Size
	rr := s.replBase.Derive(fmt.Sprintf("%d/%d", s.round, obj))
	install := func(peer int32) bool {
		if _, dup := o.holders[peer]; dup {
			return false
		}
		if err := s.nw.AddFile(int(peer), name, size); err != nil {
			return false
		}
		if o.holders == nil {
			o.holders = map[int32]struct{}{}
		}
		o.holders[peer] = struct{}{}
		return true
	}
	done := 0
	switch s.cfg.ReplScheme {
	case SchemeOwner:
		for _, origin := range o.recentOrigins {
			if done >= k {
				return done
			}
			if install(origin) {
				done++
			}
		}
	case SchemePath:
		// Walk the reverse answer path from the provider's side toward the
		// requester, the direction a fetched copy travels.
		for i := len(o.lastPath) - 2; i >= 0 && done < k; i-- {
			if install(o.lastPath[i]) {
				done++
			}
		}
	}
	// Random placement fills the remainder (and is the whole allocation
	// for the random and sqrt schemes). Attempts are bounded so a
	// nearly-everywhere-replicated object cannot stall the round.
	for tries := 0; done < k && tries < 8*k+8; tries++ {
		if install(int32(rr.Intn(len(s.nw.Peers)))) {
			done++
		}
	}
	return done
}
