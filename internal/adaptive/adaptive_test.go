package adaptive

import (
	"fmt"
	"reflect"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
	"querycentric/internal/rng"
	"querycentric/internal/strategy"
)

// testPopulation builds a small flat network with m uniquely named objects
// placed on 1–2 peers each — scarce enough that a TTL-2 flood misses often.
func testPopulation(t *testing.T, peers, m int, seed uint64) (*gnet.Network, []Object) {
	t.Helper()
	libs := make([][]string, peers)
	objs := make([]Object, m)
	place := rng.NewNamed(seed, "adaptive-test/place")
	cat := &catalog.Catalog{Libraries: libs}
	for i := range objs {
		name := fmt.Sprintf("track%04d studio master", i)
		holders := place.SampleInts(peers, 1+i%2)
		objs[i] = Object{Name: name, Size: 1 << 20}
		for _, h := range holders {
			libs[h] = append(libs[h], name)
			objs[i].Holders = append(objs[i].Holders, int32(h))
		}
		cat.Objects = append(cat.Objects, catalog.Object{ID: i, Name: name, Replicas: len(holders)})
	}
	nw, err := gnet.NewFromCatalog(gnet.Config{Seed: seed, FlatDegree: 4}, cat)
	if err != nil {
		t.Fatal(err)
	}
	return nw, objs
}

// headPick concentrates 60% of queries on the first five objects — the
// paper's Zipf head — and spreads the rest uniformly.
func headPick(m int) func(r *rng.Source) int {
	return func(r *rng.Source) int {
		if r.Intn(10) < 6 {
			return r.Intn(5)
		}
		return r.Intn(m)
	}
}

// TestInertSystemMatchesRawFloods pins the inertness contract: a System
// with AdaptInterval zero issues exactly the floods a bare network would
// under the workload derivation — same successes, messages and hops —
// and leaves topology and libraries untouched.
func TestInertSystemMatchesRawFloods(t *testing.T) {
	const peers, m, queries, seed = 150, 40, 60, 11
	nw, objs := testPopulation(t, peers, m, seed)
	degreesBefore := nw.Degrees()
	libBefore := make([]int, peers)
	for i, p := range nw.Peers {
		libBefore[i] = len(p.Library)
	}

	sys, err := New(nw, objs, Config{Seed: seed, TTL: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pick := headPick(m)
	got, err := sys.RunWorkload(queries, pick, 77)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the identical workload as raw floods on a freshly built twin.
	nw2, _ := testPopulation(t, peers, m, seed)
	ctx := nw2.NewFloodCtx()
	base := strategy.WorkloadStream(77)
	var found, msgs, hops int
	for i := 0; i < queries; i++ {
		r := strategy.QueryStream(base, i)
		origin := r.Intn(peers)
		obj := pick(r)
		res, err := ctx.Flood(origin, objs[obj].Name, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		msgs += res.Messages
		if len(res.Hits) > 0 {
			found++
			best := res.Hits[0]
			for _, h := range res.Hits {
				if h.Hops < best.Hops || (h.Hops == best.Hops && h.PeerID < best.PeerID) {
					best = h
				}
			}
			hops += best.Hops
		}
	}
	want := &strategy.Stats{Queries: queries}
	want.Success = float64(found) / float64(queries)
	want.MeanMessages = float64(msgs) / float64(queries)
	if found > 0 {
		want.MeanHops = float64(hops) / float64(found)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("inert system diverged from raw floods:\n got %+v\nwant %+v", got, want)
	}
	if want.Success == 0 || want.Success == 1 {
		t.Fatalf("degenerate baseline success %v; population mis-sized", want.Success)
	}

	if !reflect.DeepEqual(nw.Degrees(), degreesBefore) {
		t.Error("inert system mutated topology")
	}
	for i, p := range nw.Peers {
		if len(p.Library) != libBefore[i] {
			t.Errorf("inert system grew peer %d library %d → %d", i, libBefore[i], len(p.Library))
		}
	}
	if len(sys.RewireLog()) != 0 {
		t.Error("inert system recorded rewires")
	}
}

// TestWorkerInvariance pins the determinism discipline: the full adaptive
// loop — probes, floods, folding, rewiring, replication — produces
// identical stats and an identical rewire log at workers 1 and 8.
func TestWorkerInvariance(t *testing.T) {
	const peers, m, queries, seed = 150, 40, 400, 13
	run := func(workers int) (*strategy.Stats, []strategy.RewireDecision) {
		nw, objs := testPopulation(t, peers, m, seed)
		cfg := DefaultConfig(seed)
		cfg.TTL = 2
		cfg.AdaptInterval = 50
		cfg.Workers = workers
		sys, err := New(nw, objs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunWorkload(queries, headPick(m), 99)
		if err != nil {
			t.Fatal(err)
		}
		return st, sys.RewireLog()
	}
	s1, l1 := run(1)
	s8, l8 := run(8)
	if !reflect.DeepEqual(s1, s8) {
		t.Errorf("stats diverged across worker counts:\n 1: %+v\n 8: %+v", s1, s8)
	}
	if !reflect.DeepEqual(l1, l8) {
		t.Errorf("rewire logs diverged across worker counts: %d vs %d decisions", len(l1), len(l8))
	}
}

// TestAdaptationConvergesOracle is the fixed-seed oracle: under a head-heavy
// stream the adaptive system must actually rewire and replicate, its
// decisions must respect the degree caps, its rerun must reproduce the
// identical decision log, and measured steady-state success must beat the
// inert baseline on the same workload.
func TestAdaptationConvergesOracle(t *testing.T) {
	const peers, m, seed = 150, 40, 17
	cfg := DefaultConfig(seed)
	cfg.TTL = 2
	cfg.AdaptInterval = 50
	cfg.Workers = 2

	runAdaptive := func() (*strategy.Stats, []strategy.RewireDecision, *gnet.Network) {
		nw, objs := testPopulation(t, peers, m, seed)
		sys, err := New(nw, objs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunWorkload(500, headPick(m), 5); err != nil { // warmup
			t.Fatal(err)
		}
		st, err := sys.RunWorkload(200, headPick(m), 6) // measured
		if err != nil {
			t.Fatal(err)
		}
		return st, sys.RewireLog(), nw
	}
	st, log, nw := runAdaptive()

	nwB, objsB := testPopulation(t, peers, m, seed)
	inertSys, err := New(nwB, objsB, Config{Seed: seed, TTL: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inertSys.RunWorkload(500, headPick(m), 5); err != nil {
		t.Fatal(err)
	}
	baseline, err := inertSys.RunWorkload(200, headPick(m), 6)
	if err != nil {
		t.Fatal(err)
	}

	if len(log) == 0 {
		t.Fatal("adaptive run performed no rewires")
	}
	if st.Replicas == 0 {
		t.Error("adaptive run installed no replicas during measurement")
	}
	if st.Success <= baseline.Success {
		t.Errorf("adaptive success %v not above inert %v", st.Success, baseline.Success)
	}
	if st.ShortcutHits == 0 {
		t.Error("no successes came from candidate probes")
	}

	// Every decision respects the caps and the final topology respects them
	// globally (no peer above MaxDegree, none below MinDegree).
	lastRound := 0
	for _, d := range log {
		if d.Round < lastRound {
			t.Fatalf("rewire log out of round order: %+v", log)
		}
		lastRound = d.Round
		for _, id := range []int{d.Peer, d.Dropped, d.Added} {
			if id < 0 || id >= peers {
				t.Fatalf("decision references invalid peer: %+v", d)
			}
		}
	}
	for _, deg := range nw.Degrees() {
		if deg > cfg.MaxDegree || deg < cfg.MinDegree {
			t.Errorf("degree %d escaped caps [%d, %d]", deg, cfg.MinDegree, cfg.MaxDegree)
		}
	}

	// Convergence is reproducible: the same seeds yield the same decisions.
	_, log2, _ := runAdaptive()
	if !reflect.DeepEqual(log, log2) {
		t.Error("identical seeds produced different rewire logs")
	}
}

func TestConfigValidation(t *testing.T) {
	nw, objs := testPopulation(t, 30, 4, 3)
	cases := []Config{
		{Seed: 1, TTL: 0},
		{Seed: 1, TTL: 2, AdaptInterval: 10, ReplScheme: "bogus"},
		{Seed: 1, TTL: 2, AdaptInterval: 10, ReplScheme: SchemeSqrt, RewireBudget: 2, MinDegree: 0},
		{Seed: 1, TTL: 2, AdaptInterval: 10, ReplScheme: SchemeSqrt, RewireBudget: 2, MinDegree: 3, MaxDegree: 2},
		{Seed: 1, TTL: 2, RewireBudget: -1},
	}
	for i, cfg := range cases {
		if _, err := New(nw, objs, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := New(nw, nil, Config{Seed: 1, TTL: 2}); err == nil {
		t.Error("empty object set accepted")
	}
	if _, err := New(nil, objs, Config{Seed: 1, TTL: 2}); err == nil {
		t.Error("nil network accepted")
	}
	sys, err := New(nw, objs, Config{Seed: 1, TTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWorkload(0, func(*rng.Source) int { return 0 }, 1); err == nil {
		t.Error("zero queries accepted")
	}
	if sys.Name() != "adaptive" {
		t.Errorf("default name %q", sys.Name())
	}
}

// The unified interface is actually implemented.
var _ strategy.Rewirer = (*System)(nil)
