// Package stats provides the small statistical toolkit used by every
// analysis in the reproduction: set similarity (Jaccard), rank–frequency and
// CCDF series, histograms, online moments, percentiles and least-squares
// regression in log–log space.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Jaccard returns the Jaccard index |A∩B| / |A∪B| of two string sets.
// Two empty sets are defined to have similarity 1 (they are identical).
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardSlices returns the Jaccard index of two string slices, treating
// each as a set (duplicates ignored).
func JaccardSlices(a, b []string) float64 {
	return Jaccard(ToSet(a), ToSet(b))
}

// ToSet converts a slice to a set.
func ToSet(xs []string) map[string]struct{} {
	s := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

// Intersection returns |A∩B|.
func Intersection(a, b map[string]struct{}) int {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	n := 0
	for k := range small {
		if _, ok := large[k]; ok {
			n++
		}
	}
	return n
}

// RankFreqPoint is one point of a rank–frequency series: the Rank-th most
// frequent item occurs Count times.
type RankFreqPoint struct {
	Rank  int
	Count int
}

// RankFrequency converts a multiset of counts into a rank–frequency series
// sorted by decreasing count (the layout of Figures 1–4 in the paper).
func RankFrequency(counts []int) []RankFreqPoint {
	cp := make([]int, len(counts))
	copy(cp, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(cp)))
	out := make([]RankFreqPoint, len(cp))
	for i, c := range cp {
		out[i] = RankFreqPoint{Rank: i + 1, Count: c}
	}
	return out
}

// CCDFPoint is one point of a complementary CDF over integer values:
// Frac is the fraction of observations with value >= Value.
type CCDFPoint struct {
	Value int
	Frac  float64
}

// CCDF computes the complementary CDF of a set of non-negative integer
// observations. The result is sorted by increasing Value.
func CCDF(counts []int) []CCDFPoint {
	if len(counts) == 0 {
		return nil
	}
	freq := map[int]int{}
	for _, c := range counts {
		freq[c]++
	}
	values := make([]int, 0, len(freq))
	for v := range freq {
		values = append(values, v)
	}
	sort.Ints(values)
	out := make([]CCDFPoint, 0, len(values))
	remaining := len(counts)
	for _, v := range values {
		out = append(out, CCDFPoint{Value: v, Frac: float64(remaining) / float64(len(counts))})
		remaining -= freq[v]
	}
	return out
}

// FractionAtMost returns the fraction of observations with value <= limit.
func FractionAtMost(counts []int, limit int) float64 {
	if len(counts) == 0 {
		return 0
	}
	n := 0
	for _, c := range counts {
		if c <= limit {
			n++
		}
	}
	return float64(n) / float64(len(counts))
}

// FractionAtLeast returns the fraction of observations with value >= limit.
func FractionAtLeast(counts []int, limit int) float64 {
	if len(counts) == 0 {
		return 0
	}
	n := 0
	for _, c := range counts {
		if c >= limit {
			n++
		}
	}
	return float64(n) / float64(len(counts))
}

// FractionEqual returns the fraction of observations equal to v.
func FractionEqual(counts []int, v int) float64 {
	if len(counts) == 0 {
		return 0
	}
	n := 0
	for _, c := range counts {
		if c == v {
			n++
		}
	}
	return float64(n) / float64(len(counts))
}

// Online accumulates mean and variance incrementally (Welford's method).
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for no observations).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the sample variance (0 for fewer than 2 observations).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 for none).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 for none).
func (o *Online) Max() float64 { return o.max }

// Summary is a snapshot of an Online accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summary returns a snapshot of the accumulator.
func (o *Online) Summary() Summary {
	return Summary{N: o.n, Mean: o.Mean(), StdDev: o.StdDev(), Min: o.min, Max: o.max}
}

// String formats a summary for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the sample variance of xs (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// LinReg holds an ordinary least-squares fit y = Slope*x + Intercept.
type LinReg struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearRegression fits y = a*x + b by ordinary least squares.
func LinearRegression(x, y []float64) (LinReg, error) {
	if len(x) != len(y) {
		return LinReg{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinReg{}, fmt.Errorf("stats: need at least 2 points, have %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := sxy / sxx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinReg{Slope: slope, Intercept: my - slope*mx, R2: r2}, nil
}

// LogLogRegression fits log(y) = a*log(x) + b over the points with
// x > 0 and y > 0. For a Zipf-like rank–frequency series the slope a is
// the negated Zipf exponent.
func LogLogRegression(x, y []float64) (LinReg, error) {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	return LinearRegression(lx, ly)
}

// Histogram counts observations into fixed-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int
	Over     int
	binWidth float64
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n), binWidth: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Bins) { // guard against floating point edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations recorded, including outliers.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Bins {
		n += b
	}
	return n
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// SpearmanRank returns Spearman's rank correlation coefficient between two
// paired samples (ties get average ranks). The paper's companion analysis
// quantified the query/file popularity mismatch as a low rank correlation;
// values near 0 mean the two popularity orders are unrelated.
func SpearmanRank(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 pairs, have %d", len(x))
	}
	rx := ranks(x)
	ry := ranks(y)
	fit, err := LinearRegression(rx, ry)
	if err != nil {
		return 0, err
	}
	// Pearson correlation of the ranks = sign(slope)·sqrt(R²).
	r := math.Sqrt(fit.R2)
	if fit.Slope < 0 {
		r = -r
	}
	return r, nil
}

// ranks assigns average ranks (1-based) to the values of xs.
func ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	order := make([]iv, len(xs))
	for i, v := range xs {
		order[i] = iv{i, v}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].v < order[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(order); {
		j := i
		for j+1 < len(order) && order[j+1].v == order[i].v {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[order[k].idx] = avg
		}
		i = j + 1
	}
	return out
}
