package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func setOf(xs ...string) map[string]struct{} { return ToSet(xs) }

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b map[string]struct{}
		want float64
	}{
		{"identical", setOf("a", "b"), setOf("a", "b"), 1},
		{"disjoint", setOf("a"), setOf("b"), 0},
		{"half", setOf("a", "b"), setOf("b", "c"), 1.0 / 3},
		{"subset", setOf("a", "b", "c", "d"), setOf("a", "b"), 0.5},
		{"both empty", setOf(), setOf(), 1},
		{"one empty", setOf("a"), setOf(), 0},
	}
	for _, tc := range tests {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Jaccard = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b []string) bool {
		sa, sb := ToSet(a), ToSet(b)
		j := Jaccard(sa, sb)
		if j < 0 || j > 1 {
			return false
		}
		// Symmetry.
		if j != Jaccard(sb, sa) {
			return false
		}
		// Self-similarity is 1.
		return Jaccard(sa, sa) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJaccardSlicesDuplicates(t *testing.T) {
	if got := JaccardSlices([]string{"a", "a", "b"}, []string{"b", "b"}); got != 0.5 {
		t.Errorf("JaccardSlices with duplicates = %v, want 0.5", got)
	}
}

func TestIntersection(t *testing.T) {
	if got := Intersection(setOf("a", "b", "c"), setOf("b", "c", "d")); got != 2 {
		t.Errorf("Intersection = %d, want 2", got)
	}
}

func TestRankFrequency(t *testing.T) {
	got := RankFrequency([]int{3, 1, 4, 1, 5})
	want := []RankFreqPoint{{1, 5}, {2, 4}, {3, 3}, {4, 1}, {5, 1}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRankFrequencyDoesNotMutate(t *testing.T) {
	in := []int{3, 1, 2}
	RankFrequency(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("RankFrequency mutated its input")
	}
}

func TestCCDF(t *testing.T) {
	pts := CCDF([]int{1, 1, 2, 5})
	// values 1,2,5; fractions >=1: 1.0, >=2: 0.5, >=5: 0.25
	want := []CCDFPoint{{1, 1.0}, {2, 0.5}, {5, 0.25}}
	if len(pts) != len(want) {
		t.Fatalf("CCDF len = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i].Value != want[i].Value || math.Abs(pts[i].Frac-want[i].Frac) > 1e-12 {
			t.Errorf("CCDF[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
	if CCDF(nil) != nil {
		t.Error("CCDF(nil) should be nil")
	}
}

func TestCCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		pts := CCDF(counts)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value || pts[i].Frac > pts[i-1].Frac {
				return false
			}
		}
		return len(pts) > 0 && pts[0].Frac == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFractions(t *testing.T) {
	counts := []int{1, 1, 2, 3, 10}
	if got := FractionAtMost(counts, 2); got != 0.6 {
		t.Errorf("FractionAtMost = %v, want 0.6", got)
	}
	if got := FractionAtLeast(counts, 3); got != 0.4 {
		t.Errorf("FractionAtLeast = %v, want 0.4", got)
	}
	if got := FractionEqual(counts, 1); got != 0.4 {
		t.Errorf("FractionEqual = %v, want 0.4", got)
	}
	if FractionAtMost(nil, 5) != 0 || FractionAtLeast(nil, 5) != 0 || FractionEqual(nil, 5) != 0 {
		t.Error("fractions of empty input should be 0")
	}
}

func TestOnline(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(o.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", o.Variance(), 32.0/7)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
	s := o.Summary()
	if s.N != 8 || s.Mean != o.Mean() {
		t.Errorf("Summary mismatch: %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Error("zero-value Online not ready to use")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 50); got != 35 {
		t.Errorf("P50 = %v, want 35", got)
	}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("P0 = %v, want 15", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %v, want 50", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %v, want 20", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty should be NaN")
	}
}

func TestMeanVariance(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance([]float64{1, 2, 3}); got != 1 {
		t.Errorf("Variance = %v", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single value should be 0")
	}
}

func TestLinearRegression(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := LinearRegression([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("expected error for degenerate x")
	}
}

func TestLogLogRegression(t *testing.T) {
	// Perfect Zipf with exponent 1.5: y = 1000 * x^-1.5.
	var x, y []float64
	for r := 1; r <= 100; r++ {
		x = append(x, float64(r))
		y = append(y, 1000*math.Pow(float64(r), -1.5))
	}
	fit, err := LogLogRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+1.5) > 1e-9 {
		t.Errorf("slope = %v, want -1.5", fit.Slope)
	}
}

func TestLogLogRegressionSkipsNonPositive(t *testing.T) {
	x := []float64{0, 1, 2, 4}
	y := []float64{5, 1, 2, 4} // after dropping x=0: y = x exactly
	fit, err := LogLogRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 1e-9 {
		t.Errorf("slope = %v, want 1", fit.Slope)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with bad bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func BenchmarkJaccard(b *testing.B) {
	a := map[string]struct{}{}
	c := map[string]struct{}{}
	for i := 0; i < 1000; i++ {
		a[string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i))] = struct{}{}
		c[string(rune('a'+(i+5)%26))+string(rune('0'+i%10))+string(rune(i))] = struct{}{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(a, c)
	}
}

func TestSpearmanRank(t *testing.T) {
	// Perfect monotone relation (even nonlinear) ⇒ 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 4, 9, 16, 25}
	r, err := SpearmanRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone Spearman = %v, want 1", r)
	}
	// Perfect inverse ⇒ -1.
	yInv := []float64{25, 16, 9, 4, 1}
	r, _ = SpearmanRank(x, yInv)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("inverse Spearman = %v, want -1", r)
	}
}

func TestSpearmanRankUncorrelated(t *testing.T) {
	// A fixed permutation with near-zero rank correlation.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{4, 8, 1, 6, 2, 7, 3, 5}
	r, err := SpearmanRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.4 {
		t.Errorf("shuffled Spearman = %v, want near 0", r)
	}
}

func TestSpearmanRankTies(t *testing.T) {
	x := []float64{1, 1, 2, 2}
	y := []float64{1, 1, 2, 2}
	r, err := SpearmanRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Errorf("tied identical Spearman = %v, want 1", r)
	}
}

func TestSpearmanRankErrors(t *testing.T) {
	if _, err := SpearmanRank([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := SpearmanRank([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SpearmanRank([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate constant x accepted")
	}
}
