// Package synopsis implements the authors' proposed direction (their
// INFOCOM'08 follow-on, reference [9] of the paper): each peer advertises a
// compact Bloom-filter synopsis of (a bounded subset of) its content terms
// to its neighbours, and queries are forwarded only toward neighbours whose
// synopsis claims every query term.
//
// The query-centric idea is the *adaptive* synopsis: because the popular
// query vocabulary is stable but mismatched with the popular file
// vocabulary, a peer with a bounded advertisement budget should spend it on
// the terms queries actually use. SetPopular feeds the currently popular
// query terms (from analysis.Intervals); with Adaptive enabled, peers
// re-prioritize their advertised terms so content matching popular queries
// stays visible. The ablation (static vs adaptive) reproduces the paper's
// §VII claim that synopses "adapted dynamically to take into account
// transiently popular terms ... improved overall search success rates".
package synopsis

import (
	"fmt"
	"sort"

	"querycentric/internal/bloom"
	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
)

// Config tunes the synopsis network.
type Config struct {
	Seed uint64
	// SynopsisTerms caps how many terms a peer may advertise. Content
	// beyond the budget is invisible to synopsis routing (that's the
	// point of the adaptive policy).
	SynopsisTerms int
	// FPRate is the Bloom filter false-positive target.
	FPRate float64
	// Adaptive selects the query-centric advertisement policy.
	Adaptive bool
	// Fallback is how many random additional neighbours a node forwards
	// to when no neighbour synopsis matches (prevents dead ends).
	Fallback int
}

// DefaultConfig returns a reasonable configuration.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, SynopsisTerms: 64, FPRate: 0.02, Adaptive: true, Fallback: 1}
}

// Network is a synopsis-routed overlay bound to per-node content term sets.
type Network struct {
	cfg     Config
	g       *overlay.Graph
	content []map[string]struct{} // full per-node term sets (ground truth)
	ordered [][]string            // deterministic ordering of each node's terms
	syn     []*bloom.Filter       // advertised synopses
	popular map[string]struct{}

	mark  []int32
	epoch int32
	r     *rng.Source
}

// New builds the network. content[v] is node v's full term multiset
// (duplicates ignored).
func New(g *overlay.Graph, content [][]string, cfg Config) (*Network, error) {
	if g.N() != len(content) {
		return nil, fmt.Errorf("synopsis: %d content sets for %d nodes", len(content), g.N())
	}
	if cfg.SynopsisTerms < 1 {
		return nil, fmt.Errorf("synopsis: SynopsisTerms must be positive, got %d", cfg.SynopsisTerms)
	}
	if cfg.FPRate <= 0 || cfg.FPRate >= 1 {
		return nil, fmt.Errorf("synopsis: FPRate must be in (0,1), got %g", cfg.FPRate)
	}
	if cfg.Fallback < 0 {
		return nil, fmt.Errorf("synopsis: Fallback must be non-negative, got %d", cfg.Fallback)
	}
	n := &Network{
		cfg:     cfg,
		g:       g,
		content: make([]map[string]struct{}, len(content)),
		ordered: make([][]string, len(content)),
		syn:     make([]*bloom.Filter, len(content)),
		popular: map[string]struct{}{},
		mark:    make([]int32, g.N()),
		r:       rng.NewNamed(cfg.Seed, "synopsis/fallback"),
	}
	for v, ts := range content {
		set := make(map[string]struct{}, len(ts))
		for _, t := range ts {
			set[t] = struct{}{}
		}
		n.content[v] = set
		ord := make([]string, 0, len(set))
		for t := range set {
			ord = append(ord, t)
		}
		sort.Strings(ord)
		n.ordered[v] = ord
	}
	for i := range n.mark {
		n.mark[i] = -1
	}
	if err := n.rebuild(); err != nil {
		return nil, err
	}
	return n, nil
}

// SetPopular updates the currently popular query-term set and, when the
// adaptive policy is enabled, rebuilds every peer's synopsis to prioritize
// those terms. Static networks record the set but never re-advertise.
func (n *Network) SetPopular(terms []string) error {
	n.popular = make(map[string]struct{}, len(terms))
	for _, t := range terms {
		n.popular[t] = struct{}{}
	}
	if !n.cfg.Adaptive {
		return nil
	}
	return n.rebuild()
}

// rebuild re-advertises every node's synopsis under the current policy.
func (n *Network) rebuild() error {
	for v := range n.syn {
		adv := n.advertised(v)
		f, err := bloom.New(maxInt(len(adv), 8), n.cfg.FPRate)
		if err != nil {
			return err
		}
		for _, t := range adv {
			f.Add(t)
		}
		n.syn[v] = f
	}
	return nil
}

// advertised selects which of node v's terms fit the advertisement budget.
// Static policy: the first SynopsisTerms in deterministic order. Adaptive
// policy: terms that are currently popular queries first, then the rest.
func (n *Network) advertised(v int) []string {
	ord := n.ordered[v]
	if len(ord) <= n.cfg.SynopsisTerms {
		return ord
	}
	if !n.cfg.Adaptive || len(n.popular) == 0 {
		return ord[:n.cfg.SynopsisTerms]
	}
	out := make([]string, 0, n.cfg.SynopsisTerms)
	for _, t := range ord {
		if _, hot := n.popular[t]; hot {
			out = append(out, t)
			if len(out) == n.cfg.SynopsisTerms {
				return out
			}
		}
	}
	for _, t := range ord {
		if _, hot := n.popular[t]; !hot {
			out = append(out, t)
			if len(out) == n.cfg.SynopsisTerms {
				return out
			}
		}
	}
	return out
}

// Advertised exposes node v's current advertisement (for tests/ablation).
func (n *Network) Advertised(v int) []string { return n.advertised(v) }

// claims reports whether node v's synopsis claims all query terms.
func (n *Network) claims(v int32, qterms []string) bool {
	f := n.syn[v]
	for _, t := range qterms {
		if !f.Contains(t) {
			return false
		}
	}
	return true
}

// has reports whether node v's full content matches all query terms.
func (n *Network) has(v int32, qterms []string) bool {
	set := n.content[v]
	for _, t := range qterms {
		if _, ok := set[t]; !ok {
			return false
		}
	}
	return true
}

// Search routes a conjunctive term query from origin with the given TTL.
// Forwarding is synopsis-directed: a node sends the query to neighbours
// whose synopsis claims every term, plus up to Fallback random neighbours.
func (n *Network) Search(origin int, qterms []string, ttl int) (search.Result, error) {
	if origin < 0 || origin >= n.g.N() {
		return search.Result{}, fmt.Errorf("synopsis: origin %d out of range", origin)
	}
	if len(qterms) == 0 {
		return search.Result{}, fmt.Errorf("synopsis: empty query")
	}
	if ttl < 1 {
		return search.Result{}, fmt.Errorf("synopsis: TTL must be at least 1, got %d", ttl)
	}
	res := search.Result{}
	if n.has(int32(origin), qterms) {
		res.Found = true
		res.Results = 1
		return res, nil
	}
	n.epoch++
	n.mark[origin] = n.epoch
	frontier := n.forwardSet(int32(origin), qterms)
	res.Messages += len(frontier)
	var next []int32
	for hop := 1; hop <= ttl && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			if n.mark[v] == n.epoch {
				continue
			}
			n.mark[v] = n.epoch
			res.Peers++
			if n.has(v, qterms) {
				res.Results++
				if !res.Found {
					res.Found = true
					res.Hops = hop
				}
			}
			if hop == ttl {
				continue
			}
			fwd := n.forwardSet(v, qterms)
			for _, w := range fwd {
				if n.mark[w] != n.epoch {
					next = append(next, w)
					res.Messages++
				}
			}
		}
		frontier, next = next, frontier
	}
	return res, nil
}

// forwardSet selects the neighbours of v to forward to.
func (n *Network) forwardSet(v int32, qterms []string) []int32 {
	nbs := n.g.Neighbors(int(v))
	out := make([]int32, 0, 4)
	for _, nb := range nbs {
		if n.claims(nb, qterms) {
			out = append(out, nb)
		}
	}
	// Random fallback keeps the query alive past synopsis blind spots.
	for k := 0; k < n.cfg.Fallback && len(nbs) > 0; k++ {
		out = append(out, nbs[n.r.Intn(len(nbs))])
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
