package synopsis

import (
	"fmt"
	"testing"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
)

func lineGraph(t *testing.T, n int) *overlay.Graph {
	t.Helper()
	g, err := overlay.NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := New(g, [][]string{{"a"}}, DefaultConfig(1)); err == nil {
		t.Error("mismatched content accepted")
	}
	content := [][]string{{"a"}, {"b"}, {"c"}}
	bad := DefaultConfig(1)
	bad.SynopsisTerms = 0
	if _, err := New(g, content, bad); err == nil {
		t.Error("zero budget accepted")
	}
	bad2 := DefaultConfig(1)
	bad2.FPRate = 1
	if _, err := New(g, content, bad2); err == nil {
		t.Error("FPRate 1 accepted")
	}
	bad3 := DefaultConfig(1)
	bad3.Fallback = -1
	if _, err := New(g, content, bad3); err == nil {
		t.Error("negative fallback accepted")
	}
}

func TestSearchDirectedBySynopsis(t *testing.T) {
	// Line 0-1-2-3: only node 3 has the content; synopses lead there.
	g := lineGraph(t, 4)
	content := [][]string{{}, {"x"}, {"x"}, {"madonna", "music"}}
	cfg := DefaultConfig(2)
	cfg.Fallback = 0
	n, err := New(g, content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Search(0, []string{"madonna", "music"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With no fallback, forwarding only follows claiming synopses; node 1
	// and 2 don't claim, so the query dies unless 0's neighbour (1) claims.
	// Expect failure here — that's the blind-spot behaviour.
	if res.Found {
		t.Log("query found content despite no synopsis path (bloom FP); acceptable but unusual")
	}
	// Now with fallback the walk can tunnel through.
	cfg.Fallback = 1
	n2, err := New(g, content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < 5; i++ {
		res, err := n2.Search(0, []string{"madonna", "music"}, 6)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			found = true
			break
		}
	}
	if !found {
		t.Error("fallback forwarding never reached the content")
	}
}

func TestSearchImmediateNeighbour(t *testing.T) {
	g := lineGraph(t, 3)
	content := [][]string{{}, {"zeppelin", "stairway"}, {}}
	cfg := DefaultConfig(3)
	cfg.Fallback = 0
	n, err := New(g, content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Search(0, []string{"zeppelin"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 1 {
		t.Errorf("result: %+v", res)
	}
}

func TestSearchOriginContent(t *testing.T) {
	g := lineGraph(t, 2)
	n, err := New(g, [][]string{{"abba"}, {}}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Search(0, []string{"abba"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 0 || res.Messages != 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestSearchValidation(t *testing.T) {
	g := lineGraph(t, 2)
	n, _ := New(g, [][]string{{"a"}, {"b"}}, DefaultConfig(5))
	if _, err := n.Search(-1, []string{"a"}, 1); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := n.Search(0, nil, 1); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := n.Search(0, []string{"a"}, 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestAdvertisedBudget(t *testing.T) {
	g := lineGraph(t, 2)
	var big []string
	for i := 0; i < 100; i++ {
		big = append(big, fmt.Sprintf("term%03d", i))
	}
	cfg := DefaultConfig(6)
	cfg.SynopsisTerms = 10
	cfg.Adaptive = false
	n, err := New(g, [][]string{big, {}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := n.Advertised(0)
	if len(adv) != 10 {
		t.Fatalf("advertised %d terms, want 10", len(adv))
	}
}

func TestAdaptivePrioritizesPopular(t *testing.T) {
	g := lineGraph(t, 2)
	var big []string
	for i := 0; i < 100; i++ {
		big = append(big, fmt.Sprintf("term%03d", i))
	}
	cfg := DefaultConfig(7)
	cfg.SynopsisTerms = 5
	cfg.Adaptive = true
	n, err := New(g, [][]string{big, {}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetPopular([]string{"term099", "term050", "nothere"}); err != nil {
		t.Fatal(err)
	}
	adv := map[string]bool{}
	for _, s := range n.Advertised(0) {
		adv[s] = true
	}
	if !adv["term099"] || !adv["term050"] {
		t.Errorf("popular terms not prioritized: %v", n.Advertised(0))
	}
	if len(adv) != 5 {
		t.Errorf("budget violated: %d", len(adv))
	}
}

func TestStaticIgnoresPopular(t *testing.T) {
	g := lineGraph(t, 2)
	var big []string
	for i := 0; i < 100; i++ {
		big = append(big, fmt.Sprintf("term%03d", i))
	}
	cfg := DefaultConfig(8)
	cfg.SynopsisTerms = 5
	cfg.Adaptive = false
	n, _ := New(g, [][]string{big, {}}, cfg)
	before := fmt.Sprint(n.Advertised(0))
	if err := n.SetPopular([]string{"term099"}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(n.Advertised(0)) != before {
		t.Error("static policy re-advertised after SetPopular")
	}
}

func TestAdaptiveBeatsStaticUnderPopularQueries(t *testing.T) {
	// Each node holds 60 terms but may advertise only 12. Queries use a
	// small popular vocabulary that every node partially holds deep in its
	// term list; adaptive advertising surfaces exactly those terms.
	const nodes = 300
	g, err := overlay.NewErdosRenyi(nodes, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	popular := make([]string, 20)
	for i := range popular {
		popular[i] = fmt.Sprintf("hot%02d", i)
	}
	content := make([][]string, nodes)
	for v := range content {
		var ts []string
		// 55 cold filler terms that sort BEFORE the hot terms, so the
		// static first-K advertisement never includes hot content.
		for k := 0; k < 55; k++ {
			ts = append(ts, fmt.Sprintf("cold%03d-%03d", v, k))
		}
		// A few hot terms on ~30% of nodes.
		if r.Bool(0.3) {
			ts = append(ts, popular[r.Intn(len(popular))], popular[r.Intn(len(popular))])
		}
		content[v] = ts
	}
	run := func(adaptive bool) float64 {
		cfg := DefaultConfig(11)
		cfg.SynopsisTerms = 12
		cfg.Adaptive = adaptive
		cfg.Fallback = 1
		n, err := New(g, content, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SetPopular(popular); err != nil {
			t.Fatal(err)
		}
		qr := rng.New(12)
		hits := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			q := []string{popular[qr.Intn(len(popular))]}
			res, err := n.Search(qr.Intn(nodes), q, 4)
			if err != nil {
				t.Fatal(err)
			}
			if res.Found {
				hits++
			}
		}
		return float64(hits) / trials
	}
	static := run(false)
	adaptive := run(true)
	if adaptive <= static {
		t.Errorf("adaptive success %v not above static %v", adaptive, static)
	}
	if adaptive < 0.3 {
		t.Errorf("adaptive success %v unexpectedly low", adaptive)
	}
}

func BenchmarkSynopsisSearch(b *testing.B) {
	g, err := overlay.NewErdosRenyi(2000, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	content := make([][]string, 2000)
	for v := range content {
		for k := 0; k < 30; k++ {
			content[v] = append(content[v], fmt.Sprintf("t%d-%d", v%200, k))
		}
	}
	n, err := New(g, content, DefaultConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Search(i%2000, []string{fmt.Sprintf("t%d-%d", i%200, i%30)}, 4); err != nil {
			b.Fatal(err)
		}
	}
}
