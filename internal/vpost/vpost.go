// Package vpost is the varint posting-list codec underneath the compressed
// term indexes: LEB128 unsigned varints, delta-encoded ascending posting
// lists, and a streaming decode cursor for intersections that never
// materializes the list it walks.
//
// Posting lists are strictly ascending int32 file indices, so consecutive
// deltas are always ≥ 1 and almost always tiny — one or two bytes each
// instead of the four a flat []int32 arena spends. The self-contained
// Encode/Decode pair (count header + body) is the fuzzed public format;
// the body-only helpers let callers that track counts elsewhere (the
// per-peer block index in internal/gnet) share the same byte layout.
package vpost

import (
	"errors"
	"fmt"
	"math"
)

// MaxUvarintLen is the longest encoding AppendUvarint emits (64 payload
// bits at 7 bits per byte).
const MaxUvarintLen = 10

// Decode errors. Decoders return wrapped versions with positions; use
// errors.Is against these sentinels.
var (
	ErrTruncated = errors.New("vpost: truncated input")
	ErrOverflow  = errors.New("vpost: varint overflows 64 bits")
	ErrCorrupt   = errors.New("vpost: corrupt posting list")
)

// AppendUvarint appends v's LEB128 encoding to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes one LEB128 varint from b, returning the value and the
// number of bytes consumed. n == 0 reports truncated input; n < 0 reports
// a value that overflows 64 bits (|n| bytes were examined).
func Uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, c := range b {
		if i == MaxUvarintLen {
			return 0, -i
		}
		if c < 0x80 {
			if i == MaxUvarintLen-1 && c > 1 {
				return 0, -(i + 1) // 10th byte may only carry the top bit
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// SkipUvarint returns the length of the varint starting b[0], or 0 when b
// ends mid-varint. It does not validate overflow — use on trusted arenas.
func SkipUvarint(b []byte) int {
	for i, c := range b {
		if c < 0x80 {
			return i + 1
		}
	}
	return 0
}

// AppendBody appends the body of a posting list — first value absolute,
// then the gaps between consecutive values — without a count header. The
// list must be strictly ascending and non-negative; Append panics on
// violations, as the caller owns construction-time invariants.
func AppendBody(dst []byte, postings []int32) []byte {
	prev := int32(-1)
	for _, p := range postings {
		if p <= prev {
			panic(fmt.Sprintf("vpost: postings not strictly ascending: %d after %d", p, prev))
		}
		dst = AppendUvarint(dst, uint64(uint32(p-prev-1)))
		prev = p
	}
	return dst
}

// Cursor streams the values of an encoded posting-list body. The zero
// Cursor is empty; initialize with NewCursor.
type Cursor struct {
	b    []byte
	prev int32
	left int
	bad  bool
}

// NewCursor returns a cursor over an encoded body holding count values.
func NewCursor(body []byte, count int) Cursor {
	return Cursor{b: body, prev: -1, left: count}
}

// Next decodes the next posting. ok is false once the list is exhausted or
// the body is corrupt (check Err to distinguish).
func (c *Cursor) Next() (int32, bool) {
	if c.left <= 0 || c.bad {
		return 0, false
	}
	gap, n := Uvarint(c.b)
	if n <= 0 || gap > math.MaxInt32 {
		c.bad = true
		return 0, false
	}
	next := int64(c.prev) + 1 + int64(gap)
	if next > math.MaxInt32 {
		c.bad = true
		return 0, false
	}
	c.b = c.b[n:]
	c.prev = int32(next)
	c.left--
	return c.prev, true
}

// Err reports whether the cursor stopped on corrupt bytes rather than a
// clean end of list.
func (c *Cursor) Err() error {
	if c.bad {
		return ErrCorrupt
	}
	return nil
}

// Encode appends the self-contained encoding of a posting list — a count
// varint followed by the body — to dst.
func Encode(dst []byte, postings []int32) []byte {
	dst = AppendUvarint(dst, uint64(len(postings)))
	return AppendBody(dst, postings)
}

// Decode decodes one self-contained posting list from src, appending values
// to dst (pass dst[:0] to reuse a scratch slice). It returns the grown
// slice and the number of bytes consumed. Corrupt input — truncation, a
// count larger than the remaining bytes could hold, gaps that overflow
// int32 — returns an error and never a partial list or a large speculative
// allocation.
func Decode(src []byte, dst []int32) ([]int32, int, error) {
	count, n := Uvarint(src)
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: count header", ErrTruncated)
	}
	if n < 0 {
		return nil, 0, fmt.Errorf("%w: count header", ErrOverflow)
	}
	// Every posting costs at least one byte, so a count beyond the
	// remaining length proves corruption before any allocation happens.
	if count > uint64(len(src)-n) {
		return nil, 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, count, len(src)-n)
	}
	cur := NewCursor(src[n:], int(count))
	for {
		v, ok := cur.Next()
		if !ok {
			break
		}
		dst = append(dst, v)
	}
	if cur.Err() != nil || cur.left != 0 {
		return nil, 0, fmt.Errorf("%w: body ends after %d of %d postings", ErrCorrupt, count-uint64(cur.left), count)
	}
	return dst, n + (len(src) - n - len(cur.b)), nil
}
