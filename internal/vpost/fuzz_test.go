package vpost

import (
	"testing"
)

// FuzzVarintPostings mirrors gmsg's FuzzDecodeMessage for the posting-list
// codec: Decode must never panic, over-read or over-allocate on arbitrary
// input, anything it accepts must survive a value-level re-encode/re-decode
// round trip, and valid encodings seeded from Encode must round-trip.
func FuzzVarintPostings(f *testing.F) {
	seeds := [][]int32{
		nil,
		{0},
		{7},
		{0, 1, 2, 3, 4},
		{5, 900, 4096, 100000},
		{2147483646, 2147483647},
	}
	for _, l := range seeds {
		f.Add(Encode(nil, l))
	}
	// Adversarial: truncations, lying counts, continuation-bit runs.
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x7f, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, n, err := Decode(b, nil)
		if err != nil {
			if got != nil || n != 0 {
				t.Fatalf("Decode error %v returned partial result (%v, %d)", err, got, n)
			}
			return
		}
		if n < 1 || n > len(b) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(b))
		}
		prev := int32(-1)
		for i, v := range got {
			if v <= prev {
				t.Fatalf("decoded list not strictly ascending at %d: %v", i, got)
			}
			prev = v
		}
		// Re-encoding is canonical: never longer than what was consumed
		// (LEB128 admits padded encodings; Encode emits minimal ones), and
		// decoding it reproduces the same values.
		back := Encode(nil, got)
		if len(back) > n {
			t.Fatalf("re-encode grew: %d bytes from %d consumed", len(back), n)
		}
		// And a second decode of the canonical bytes agrees.
		again, n2, err := Decode(back, nil)
		if err != nil || n2 != len(back) {
			t.Fatalf("re-decode failed: %v (n=%d)", err, n2)
		}
		for i := range got {
			if again[i] != got[i] {
				t.Fatalf("re-decode diverged at %d", i)
			}
		}
	})
}
