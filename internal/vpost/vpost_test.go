package vpost

import (
	"math"
	"reflect"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 300, 1 << 14, 1<<14 - 1, 1 << 21, 1 << 28, 1 << 35, math.MaxUint32, math.MaxUint64}
	for _, v := range values {
		b := AppendUvarint(nil, v)
		got, n := Uvarint(b)
		if n != len(b) || got != v {
			t.Fatalf("Uvarint(Append(%d)) = (%d, %d), want (%d, %d)", v, got, n, v, len(b))
		}
		if s := SkipUvarint(b); s != len(b) {
			t.Fatalf("SkipUvarint(%d) = %d, want %d", v, s, len(b))
		}
	}
}

func TestUvarintTruncatedAndOverflow(t *testing.T) {
	if _, n := Uvarint(nil); n != 0 {
		t.Fatalf("Uvarint(nil) n = %d, want 0", n)
	}
	if _, n := Uvarint([]byte{0x80, 0x80}); n != 0 {
		t.Fatalf("Uvarint(all-continuation) n = %d, want 0", n)
	}
	// Eleven continuation bytes can never be a valid 64-bit varint.
	over := make([]byte, 11)
	for i := range over {
		over[i] = 0x80
	}
	if _, n := Uvarint(over); n >= 0 {
		t.Fatalf("Uvarint(overflow) n = %d, want < 0", n)
	}
	// Ten bytes whose last carries more than the top bit also overflows.
	ten := append(make([]byte, 0, 10), over[:9]...)
	ten = append(ten, 0x02)
	if _, n := Uvarint(ten); n >= 0 {
		t.Fatalf("Uvarint(10-byte overflow) n = %d, want < 0", n)
	}
	max := AppendUvarint(nil, math.MaxUint64)
	if v, n := Uvarint(max); n != len(max) || v != math.MaxUint64 {
		t.Fatalf("Uvarint(MaxUint64) = (%d, %d)", v, n)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lists := [][]int32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{3, 900, 901, 100000, math.MaxInt32},
		{math.MaxInt32},
	}
	var dst []int32
	for _, l := range lists {
		b := Encode(nil, l)
		got, n, err := Decode(b, dst[:0])
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", l, err)
		}
		if n != len(b) {
			t.Fatalf("Decode(%v) consumed %d of %d bytes", l, n, len(b))
		}
		if len(l) == 0 {
			if len(got) != 0 {
				t.Fatalf("Decode(empty) = %v", got)
			}
			continue
		}
		if !reflect.DeepEqual([]int32(got), l) {
			t.Fatalf("round trip %v = %v", l, got)
		}
	}
}

func TestDecodeTrailingBytesIgnored(t *testing.T) {
	b := Encode(nil, []int32{2, 7})
	b = append(b, 0xff, 0x01) // another record after this one
	got, n, err := Decode(b, nil)
	if err != nil || n != len(b)-2 {
		t.Fatalf("Decode with trailing bytes: %v (n=%d)", err, n)
	}
	if !reflect.DeepEqual([]int32(got), []int32{2, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// Count 2, first = MaxInt32, then any further gap pushes past int32.
	valueOverflow := AppendUvarint(AppendUvarint([]byte{0x02}, math.MaxInt32), 4)
	cases := map[string][]byte{
		"empty":              {},
		"count-truncated":    {0x80},
		"count-over-length":  {0x7f, 0x01}, // 127 postings, 1 byte of body
		"body-truncated":     {0x02, 0x01},
		"body-mid-varint":    {0x01, 0x80},
		"gap-overflows-i32":  append(AppendUvarint([]byte{0x02, 0x01}, 1<<33), 0x00),
		"value-overflow-i32": valueOverflow,
	}
	for name, b := range cases {
		if _, _, err := Decode(b, nil); err == nil {
			t.Fatalf("Decode(%s) succeeded, want error", name)
		}
	}
}

func TestAppendBodyPanicsOnDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendBody accepted a non-ascending list")
		}
	}()
	AppendBody(nil, []int32{3, 3})
}

func TestCursorMatchesDecode(t *testing.T) {
	l := []int32{1, 4, 6, 10000, 10001}
	body := AppendBody(nil, l)
	c := NewCursor(body, len(l))
	for i, want := range l {
		got, ok := c.Next()
		if !ok || got != want {
			t.Fatalf("cursor[%d] = (%d, %v), want %d", i, got, ok, want)
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("cursor yielded beyond count")
	}
	if c.Err() != nil {
		t.Fatalf("clean cursor reports %v", c.Err())
	}
}
