package sim

import (
	"testing"
)

func TestRunOrder(t *testing.T) {
	k := New()
	var order []int
	k.Schedule(30, func(int64) { order = append(order, 3) })
	k.Schedule(10, func(int64) { order = append(order, 1) })
	k.Schedule(20, func(int64) { order = append(order, 2) })
	if n := k.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if k.Now() != 30 {
		t.Errorf("clock = %d", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func(int64) { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleDuringRun(t *testing.T) {
	k := New()
	var hits []int64
	k.Schedule(1, func(now int64) {
		hits = append(hits, now)
		k.After(5, func(now int64) { hits = append(hits, now) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 6 {
		t.Errorf("hits = %v", hits)
	}
}

func TestScheduleValidation(t *testing.T) {
	k := New()
	k.Schedule(10, func(int64) {})
	k.Run()
	if err := k.Schedule(5, func(int64) {}); err == nil {
		t.Error("past scheduling accepted")
	}
	if err := k.Schedule(10, nil); err == nil {
		t.Error("nil event accepted")
	}
	if err := k.After(-1, func(int64) {}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	count := 0
	for i := int64(1); i <= 10; i++ {
		k.Schedule(i*10, func(int64) { count++ })
	}
	if n := k.RunUntil(50); n != 5 {
		t.Fatalf("RunUntil(50) ran %d events", n)
	}
	if k.Pending() != 5 {
		t.Errorf("pending = %d", k.Pending())
	}
	if k.Now() != 50 {
		t.Errorf("clock = %d", k.Now())
	}
	if n := k.Run(); n != 5 {
		t.Errorf("second Run ran %d", n)
	}
	if count != 10 {
		t.Errorf("count = %d", count)
	}
}

func TestStop(t *testing.T) {
	k := New()
	ran := 0
	k.Schedule(1, func(int64) { ran++; k.Stop() })
	k.Schedule(2, func(int64) { ran++ })
	if n := k.Run(); n != 1 {
		t.Fatalf("ran %d events despite Stop", n)
	}
	if k.Pending() != 1 {
		t.Errorf("pending = %d", k.Pending())
	}
	// Run resumes after Stop.
	if n := k.Run(); n != 1 || ran != 2 {
		t.Errorf("resume ran %d, total %d", n, ran)
	}
}

func TestSelfPerpetuatingBounded(t *testing.T) {
	k := New()
	ticks := 0
	var tick Event
	tick = func(now int64) {
		ticks++
		if ticks < 100 {
			k.After(1, tick)
		}
	}
	k.Schedule(0, tick)
	k.Run()
	if ticks != 100 {
		t.Errorf("ticks = %d", ticks)
	}
	if k.Now() != 99 {
		t.Errorf("clock = %d", k.Now())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		for j := int64(0); j < 1000; j++ {
			k.Schedule(j, func(int64) {})
		}
		k.Run()
	}
}
