// Package sim is a minimal discrete-event simulation kernel: a clock and a
// time-ordered event queue with deterministic FIFO tie-breaking. The
// synopsis-adaptation experiment and churn scenarios are driven by it.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback executed at its scheduled time.
type Event func(now int64)

// Kernel is a discrete-event scheduler. The zero value is NOT ready; use
// New.
type Kernel struct {
	now     int64
	seq     uint64
	queue   eventHeap
	stopped bool
}

// New returns a kernel with the clock at 0.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() int64 { return k.now }

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule runs fn at time at. Scheduling in the past is an error;
// scheduling at the current time runs fn after already-queued events for
// that time.
func (k *Kernel) Schedule(at int64, fn Event) error {
	if fn == nil {
		return fmt.Errorf("sim: nil event")
	}
	if at < k.now {
		return fmt.Errorf("sim: schedule at %d before now %d", at, k.now)
	}
	k.seq++
	heap.Push(&k.queue, scheduled{at: at, seq: k.seq, fn: fn})
	return nil
}

// After runs fn d time units from now.
func (k *Kernel) After(d int64, fn Event) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %d", d)
	}
	return k.Schedule(k.now+d, fn)
}

// Stop makes Run return after the current event.
func (k *Kernel) Stop() { k.stopped = true }

// Run processes events until the queue drains or Stop is called, returning
// the number of events executed.
func (k *Kernel) Run() int {
	return k.RunUntil(1<<63 - 1)
}

// RunUntil processes events with time <= t (or until Stop), advancing the
// clock to each event's time; the clock finishes at min(t, last event time)
// or stays if nothing ran.
func (k *Kernel) RunUntil(t int64) int {
	k.stopped = false
	n := 0
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > t {
			break
		}
		heap.Pop(&k.queue)
		k.now = next.at
		next.fn(k.now)
		n++
	}
	return n
}

type scheduled struct {
	at  int64
	seq uint64
	fn  Event
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
