package analysis

import (
	"fmt"

	"querycentric/internal/stats"
	"querycentric/internal/terms"
	"querycentric/internal/trace"
)

// IntervalConfig controls how query traces are bucketed and what counts as
// "popular" within an evaluation interval.
type IntervalConfig struct {
	// Interval is the evaluation interval in seconds (the paper sweeps 15,
	// 30, 60, 120 minutes and reports 60 in Figures 6–7).
	Interval int64
	// PopularFrac: a term is popular in an interval when its occurrence
	// count is at least PopularFrac of the interval's term volume.
	PopularFrac float64
	// MinPopularCount floors the popularity threshold so near-empty
	// intervals don't declare everything popular.
	MinPopularCount int
}

// DefaultIntervalConfig matches the paper's 60-minute evaluation interval.
func DefaultIntervalConfig() IntervalConfig {
	return IntervalConfig{Interval: 3600, PopularFrac: 0.0025, MinPopularCount: 3}
}

// Interval is one evaluation interval's term statistics.
type Interval struct {
	Index   int   // interval number
	Start   int64 // start time in seconds
	Queries int   // queries observed
	Volume  int   // term occurrences observed
	Counts  map[string]int
	Popular map[string]struct{}
}

// Intervals buckets a query trace into evaluation intervals and marks each
// interval's popular terms.
func Intervals(tr *trace.QueryTrace, cfg IntervalConfig) ([]*Interval, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("analysis: Interval must be positive, got %d", cfg.Interval)
	}
	if cfg.PopularFrac < 0 || cfg.PopularFrac > 1 {
		return nil, fmt.Errorf("analysis: PopularFrac out of range: %g", cfg.PopularFrac)
	}
	if tr.Duration <= 0 {
		return nil, fmt.Errorf("analysis: trace has no duration")
	}
	n := int((tr.Duration + cfg.Interval - 1) / cfg.Interval)
	out := make([]*Interval, n)
	for i := range out {
		out[i] = &Interval{Index: i, Start: int64(i) * cfg.Interval, Counts: map[string]int{}}
	}
	for _, rec := range tr.Records {
		if rec.Time < 0 || rec.Time >= tr.Duration {
			return nil, fmt.Errorf("analysis: query time %d outside trace duration %d", rec.Time, tr.Duration)
		}
		iv := out[rec.Time/cfg.Interval]
		iv.Queries++
		for _, tok := range terms.Tokenize(rec.Query) {
			iv.Counts[tok]++
			iv.Volume++
		}
	}
	for _, iv := range out {
		thresh := int(cfg.PopularFrac * float64(iv.Volume))
		if thresh < cfg.MinPopularCount {
			thresh = cfg.MinPopularCount
		}
		iv.Popular = make(map[string]struct{})
		for tok, c := range iv.Counts {
			if c >= thresh {
				iv.Popular[tok] = struct{}{}
			}
		}
	}
	return out, nil
}

// SeriesPoint is one (time, value) sample of a per-interval series.
type SeriesPoint struct {
	Start int64
	Value float64
}

// StabilitySeries computes the Figure 6 series: for each interval t>0 the
// Jaccard similarity between the interval's popular set Q*_t and the
// persistently popular set Q̃_t = Q*_t ∩ Q*_{t−1}. High values mean the
// popular vocabulary is stable from interval to interval.
func StabilitySeries(ivs []*Interval) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(ivs))
	for i := 1; i < len(ivs); i++ {
		cur, prev := ivs[i].Popular, ivs[i-1].Popular
		persist := make(map[string]struct{})
		for t := range cur {
			if _, ok := prev[t]; ok {
				persist[t] = struct{}{}
			}
		}
		out = append(out, SeriesPoint{Start: ivs[i].Start, Value: stats.Jaccard(cur, persist)})
	}
	return out
}

// MismatchSeries computes the Figure 7 series: for each interval, the
// Jaccard similarity between the interval's popular query terms and the
// popular file term set F*.
func MismatchSeries(ivs []*Interval, fileTerms map[string]struct{}) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, SeriesPoint{Start: iv.Start, Value: stats.Jaccard(iv.Popular, fileTerms)})
	}
	return out
}

// AllTermsMismatchSeries is the variant using every query term observed in
// the interval, not only the popular ones (the paper's 5% statistic).
func AllTermsMismatchSeries(ivs []*Interval, fileTerms map[string]struct{}) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(ivs))
	for _, iv := range ivs {
		all := make(map[string]struct{}, len(iv.Counts))
		for t := range iv.Counts {
			all[t] = struct{}{}
		}
		out = append(out, SeriesPoint{Start: iv.Start, Value: stats.Jaccard(all, fileTerms)})
	}
	return out
}

// TransientConfig controls transient-popularity detection (Figure 5).
type TransientConfig struct {
	// TrainFrac is the fraction of the trace (by query count, from the
	// start) used to establish each term's historical rate.
	TrainFrac float64
	// Ratio: a term is transiently popular in an interval when its count
	// is at least Ratio times its historically expected count there.
	Ratio float64
	// MinCount floors the interval count so rare-term noise (expected
	// count ~0) doesn't read as a burst.
	MinCount int
}

// DefaultTransientConfig mirrors the paper's method: train on the first 10%
// of queries, flag significant deviations from the historical average.
func DefaultTransientConfig() TransientConfig {
	return TransientConfig{TrainFrac: 0.10, Ratio: 5, MinCount: 8}
}

// TransientPoint reports the transiently popular terms of one interval.
type TransientPoint struct {
	Start int64
	Terms []string
	Count int
}

// Transients computes the Figure 5 series for one evaluation interval
// length: the number of transiently popular terms per interval, judged
// against per-term historical rates learned on the training prefix.
func Transients(tr *trace.QueryTrace, interval int64, cfg TransientConfig) ([]TransientPoint, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("analysis: interval must be positive")
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		return nil, fmt.Errorf("analysis: TrainFrac must be in (0,1), got %g", cfg.TrainFrac)
	}
	if cfg.Ratio <= 1 {
		return nil, fmt.Errorf("analysis: Ratio must exceed 1, got %g", cfg.Ratio)
	}
	nTrain := int(float64(len(tr.Records)) * cfg.TrainFrac)
	if nTrain == 0 || nTrain >= len(tr.Records) {
		return nil, fmt.Errorf("analysis: training prefix of %d queries is unusable", nTrain)
	}
	trainEnd := tr.Records[nTrain-1].Time + 1 // training window in seconds
	hist := map[string]int{}
	histVolume := 0
	for _, rec := range tr.Records[:nTrain] {
		for _, tok := range terms.Tokenize(rec.Query) {
			hist[tok]++
			histVolume++
		}
	}
	if histVolume == 0 {
		return nil, fmt.Errorf("analysis: training prefix contains no terms")
	}

	// Bucket the evaluation portion.
	evalTrace := &trace.QueryTrace{Duration: tr.Duration, Records: tr.Records[nTrain:]}
	ivs, err := Intervals(evalTrace, IntervalConfig{Interval: interval, PopularFrac: 1, MinPopularCount: 1 << 30})
	if err != nil {
		return nil, err
	}
	out := make([]TransientPoint, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Start+interval <= trainEnd {
			continue // fully inside the training window
		}
		tp := TransientPoint{Start: iv.Start}
		for tok, c := range iv.Counts {
			if c < cfg.MinCount {
				continue
			}
			// Historical expectation for this interval: the term's share
			// of training volume times this interval's volume.
			expected := float64(hist[tok]) / float64(histVolume) * float64(iv.Volume)
			if float64(c) >= cfg.Ratio*expected+float64(cfg.MinCount)-1 {
				tp.Terms = append(tp.Terms, tok)
			}
		}
		tp.Count = len(tp.Terms)
		out = append(out, tp)
	}
	return out, nil
}

// TransientSummary aggregates a Figure 5 series into the mean and variance
// the paper reports ("the overall mean was low, but there was significant
// variance").
func TransientSummary(points []TransientPoint) stats.Summary {
	var o stats.Online
	for _, p := range points {
		o.Add(float64(p.Count))
	}
	return o.Summary()
}
