package analysis

import (
	"math"
	"testing"

	"querycentric/internal/trace"
)

func objTrace(records ...trace.ObjectRecord) *trace.ObjectTrace {
	peers := map[int]bool{}
	for _, r := range records {
		peers[r.Peer] = true
	}
	return &trace.ObjectTrace{Source: "test", Peers: len(peers), Records: records}
}

func TestReplicasExactCounts(t *testing.T) {
	tr := objTrace(
		trace.ObjectRecord{Peer: 0, Name: "A - B.mp3"},
		trace.ObjectRecord{Peer: 1, Name: "A - B.mp3"},
		trace.ObjectRecord{Peer: 2, Name: "A - B.mp3"},
		trace.ObjectRecord{Peer: 0, Name: "C - D.mp3"},
		trace.ObjectRecord{Peer: 0, Name: "C - D.mp3"}, // dup on same peer: one
		trace.ObjectRecord{Peer: 3, Name: "E - F.mp3"},
	)
	rep := Replicas(tr, false)
	if rep.Unique != 3 {
		t.Fatalf("unique = %d, want 3", rep.Unique)
	}
	if rep.TotalPlacements != 5 { // 3 + 1 + 1
		t.Errorf("placements = %d, want 5", rep.TotalPlacements)
	}
	if math.Abs(rep.SingletonFrac-2.0/3) > 1e-12 {
		t.Errorf("singleton frac = %v, want 2/3", rep.SingletonFrac)
	}
	if got := rep.FracAtMost(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("FracAtMost(1) = %v", got)
	}
	if got := rep.FracAtLeast(3); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("FracAtLeast(3) = %v", got)
	}
	if rf := rep.RankFreq(); rf[0].Count != 3 {
		t.Errorf("rank 1 count = %d", rf[0].Count)
	}
	if rep.String() == "" {
		t.Error("String empty")
	}
}

func TestReplicasUnsortedInput(t *testing.T) {
	// Records deliberately interleaved across peers.
	tr := objTrace(
		trace.ObjectRecord{Peer: 2, Name: "X.mp3"},
		trace.ObjectRecord{Peer: 0, Name: "X.mp3"},
		trace.ObjectRecord{Peer: 2, Name: "Y.mp3"},
		trace.ObjectRecord{Peer: 0, Name: "X.mp3"},
		trace.ObjectRecord{Peer: 1, Name: "X.mp3"},
	)
	rep := Replicas(tr, false)
	if rep.Unique != 2 {
		t.Fatalf("unique = %d", rep.Unique)
	}
	for _, c := range rep.Counts {
		if c != 3 && c != 1 {
			t.Errorf("unexpected count %d", c)
		}
	}
}

func TestReplicasSanitizeMergesVariants(t *testing.T) {
	tr := objTrace(
		trace.ObjectRecord{Peer: 0, Name: "Aaron Neville - I Dont Know Much.mp3"},
		trace.ObjectRecord{Peer: 1, Name: "aaron neville - i dont know much.MP3"},
		trace.ObjectRecord{Peer: 2, Name: "AARON NEVILLE- I DONT KNOW MUCH.mp3"},
	)
	raw := Replicas(tr, false)
	san := Replicas(tr, true)
	if raw.Unique != 3 {
		t.Errorf("raw unique = %d, want 3", raw.Unique)
	}
	if san.Unique != 1 {
		t.Errorf("sanitized unique = %d, want 1", san.Unique)
	}
	if san.Counts[0] != 3 {
		t.Errorf("sanitized count = %d, want 3", san.Counts[0])
	}
}

func TestReplicasSanitizeDropsEmpty(t *testing.T) {
	tr := objTrace(trace.ObjectRecord{Peer: 0, Name: "---"})
	san := Replicas(tr, true)
	if san.Unique != 0 {
		t.Errorf("punctuation-only name survived sanitization: %d", san.Unique)
	}
}

func TestTermPeers(t *testing.T) {
	tr := objTrace(
		trace.ObjectRecord{Peer: 0, Name: "Aaron Neville - Bayou.mp3"},
		trace.ObjectRecord{Peer: 0, Name: "Aaron Again.mp3"}, // aaron counted once for peer 0
		trace.ObjectRecord{Peer: 1, Name: "Aaron Solo.mp3"},
	)
	rep := TermPeers(tr)
	// Terms: aaron(2 peers), neville(1), bayou(1), mp3(2), again(1), solo(1)
	if rep.Unique != 6 {
		t.Fatalf("unique terms = %d, want 6", rep.Unique)
	}
	twos := 0
	for _, c := range rep.Counts {
		if c == 2 {
			twos++
		}
	}
	if twos != 2 {
		t.Errorf("%d terms on 2 peers, want 2 (aaron, mp3)", twos)
	}
}

func TestRankedFileTerms(t *testing.T) {
	tr := objTrace(
		trace.ObjectRecord{Peer: 0, Name: "love love song.mp3"},
		trace.ObjectRecord{Peer: 1, Name: "love story.mp3"},
	)
	ranked := RankedFileTerms(tr)
	if ranked[0].Term != "love" || ranked[0].Count != 3 {
		t.Errorf("top term = %+v, want love x3", ranked[0])
	}
	if ranked[1].Term != "mp3" || ranked[1].Count != 2 {
		t.Errorf("second term = %+v, want mp3 x2", ranked[1])
	}
	// Determinism: ties sorted lexicographically.
	if ranked[2].Count != 1 || ranked[3].Count != 1 {
		t.Error("tail counts wrong")
	}
	if ranked[2].Term > ranked[3].Term {
		t.Error("ties not lexicographic")
	}
}

func TestTopTerms(t *testing.T) {
	ranked := []TermCount{{"aa", 5}, {"bb", 3}, {"cc", 1}}
	top := TopTerms(ranked, 2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if _, ok := top["aa"]; !ok {
		t.Error("missing aa")
	}
	if got := TopTerms(ranked, 99); len(got) != 3 {
		t.Errorf("oversized k: %d", len(got))
	}
}

func songTrace(records ...trace.SongRecord) *trace.SongTrace {
	peers := map[int]bool{}
	for _, r := range records {
		peers[r.Peer] = true
	}
	return &trace.SongTrace{Source: "test", Peers: len(peers), Records: records}
}

func TestAnnotations(t *testing.T) {
	tr := songTrace(
		trace.SongRecord{Peer: 0, Track: "Bayou", Artist: "Linda", Album: "Dreams", Genre: "Rock"},
		trace.SongRecord{Peer: 1, Track: "Bayou", Artist: "Linda", Album: "", Genre: "Rock"},
		trace.SongRecord{Peer: 1, Track: "Other", Artist: "Linda", Album: "Dreams", Genre: ""},
	)
	song, err := Annotations(tr, AnnotationSong)
	if err != nil {
		t.Fatal(err)
	}
	if song.Unique != 2 || song.MissingFrac != 0 {
		t.Errorf("song report: %+v", song.DistReport)
	}
	genre, err := Annotations(tr, AnnotationGenre)
	if err != nil {
		t.Fatal(err)
	}
	if genre.Unique != 1 {
		t.Errorf("genre unique = %d", genre.Unique)
	}
	if math.Abs(genre.MissingFrac-1.0/3) > 1e-12 {
		t.Errorf("genre missing = %v, want 1/3", genre.MissingFrac)
	}
	artist, err := Annotations(tr, AnnotationArtist)
	if err != nil {
		t.Fatal(err)
	}
	if artist.Unique != 1 || artist.Counts[0] != 2 {
		t.Errorf("artist report: unique=%d counts=%v", artist.Unique, artist.Counts)
	}
	album, err := Annotations(tr, AnnotationAlbum)
	if err != nil {
		t.Fatal(err)
	}
	if album.Unique != 1 || math.Abs(album.MissingFrac-1.0/3) > 1e-12 {
		t.Errorf("album report: %+v missing=%v", album.DistReport, album.MissingFrac)
	}
}

func TestAnnotationsUnknownKind(t *testing.T) {
	if _, err := Annotations(songTrace(), Annotation(42)); err == nil {
		t.Error("unknown annotation accepted")
	}
}

func TestAnnotationString(t *testing.T) {
	for a, want := range map[Annotation]string{
		AnnotationSong: "song", AnnotationGenre: "genre",
		AnnotationAlbum: "album", AnnotationArtist: "artist",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
}

func TestEmptyTraces(t *testing.T) {
	rep := Replicas(objTrace(), false)
	if rep.Unique != 0 || rep.SingletonFrac != 0 {
		t.Errorf("empty trace report: %+v", rep)
	}
	if rep.FitErr == nil {
		t.Error("expected fit error for empty trace")
	}
	if got := RankedFileTerms(objTrace()); len(got) != 0 {
		t.Errorf("ranked terms of empty trace: %v", got)
	}
}
