package analysis

import (
	"fmt"
	"testing"

	"querycentric/internal/querygen"
	"querycentric/internal/stats"
	"querycentric/internal/trace"
)

func queryTrace(duration int64, recs ...trace.QueryRecord) *trace.QueryTrace {
	return &trace.QueryTrace{Source: "test", Duration: duration, Records: recs}
}

func TestIntervalsValidation(t *testing.T) {
	tr := queryTrace(100)
	if _, err := Intervals(tr, IntervalConfig{Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Intervals(tr, IntervalConfig{Interval: 10, PopularFrac: 2}); err == nil {
		t.Error("bad PopularFrac accepted")
	}
	if _, err := Intervals(queryTrace(0), DefaultIntervalConfig()); err == nil {
		t.Error("zero-duration trace accepted")
	}
	bad := queryTrace(10, trace.QueryRecord{Time: 50, Query: "x y"})
	if _, err := Intervals(bad, IntervalConfig{Interval: 10}); err == nil {
		t.Error("out-of-range record accepted")
	}
}

func TestIntervalsBucketing(t *testing.T) {
	tr := queryTrace(100,
		trace.QueryRecord{Time: 0, Query: "madonna music"},
		trace.QueryRecord{Time: 9, Query: "madonna"},
		trace.QueryRecord{Time: 10, Query: "zeppelin"},
		trace.QueryRecord{Time: 99, Query: "madonna music"},
	)
	ivs, err := Intervals(tr, IntervalConfig{Interval: 10, PopularFrac: 0.5, MinPopularCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 10 {
		t.Fatalf("%d intervals, want 10", len(ivs))
	}
	if ivs[0].Queries != 2 || ivs[0].Volume != 3 {
		t.Errorf("interval 0: queries=%d volume=%d", ivs[0].Queries, ivs[0].Volume)
	}
	if ivs[0].Counts["madonna"] != 2 {
		t.Errorf("madonna count = %d", ivs[0].Counts["madonna"])
	}
	// Popular threshold: max(0.5*3, 2) = 2 ⇒ only madonna.
	if _, ok := ivs[0].Popular["madonna"]; !ok {
		t.Error("madonna not popular in interval 0")
	}
	if _, ok := ivs[0].Popular["music"]; ok {
		t.Error("music wrongly popular")
	}
	if ivs[1].Queries != 1 {
		t.Errorf("interval 1 queries = %d", ivs[1].Queries)
	}
	if ivs[9].Queries != 1 {
		t.Errorf("interval 9 queries = %d", ivs[9].Queries)
	}
}

func TestStabilitySeries(t *testing.T) {
	mk := func(tokens ...string) *Interval {
		iv := &Interval{Popular: map[string]struct{}{}}
		for _, tok := range tokens {
			iv.Popular[tok] = struct{}{}
		}
		return iv
	}
	ivs := []*Interval{
		mk("a", "b", "c"),
		mk("a", "b", "c"), // identical: J = 1
		mk("a", "b", "d"), // persist {a,b} of {a,b,d}: J = 2/3
		mk("x", "y"),      // persist {}: J = 0
	}
	// Give them starts.
	for i, iv := range ivs {
		iv.Start = int64(i * 10)
	}
	s := StabilitySeries(ivs)
	if len(s) != 3 {
		t.Fatalf("series length %d", len(s))
	}
	want := []float64{1, 2.0 / 3, 0}
	for i, w := range want {
		if diff := s[i].Value - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("point %d = %v, want %v", i, s[i].Value, w)
		}
	}
}

func TestMismatchSeries(t *testing.T) {
	iv := &Interval{
		Start:   0,
		Popular: map[string]struct{}{"a": {}, "b": {}},
		Counts:  map[string]int{"a": 5, "b": 4, "z": 1},
	}
	file := map[string]struct{}{"b": {}, "c": {}}
	s := MismatchSeries([]*Interval{iv}, file)
	if len(s) != 1 || s[0].Value != 1.0/3 {
		t.Errorf("mismatch = %+v, want 1/3", s)
	}
	all := AllTermsMismatchSeries([]*Interval{iv}, file)
	// all terms {a,b,z} vs {b,c}: J = 1/4.
	if len(all) != 1 || all[0].Value != 0.25 {
		t.Errorf("all-terms mismatch = %+v, want 0.25", all)
	}
}

func TestTransientsValidation(t *testing.T) {
	tr := queryTrace(100, trace.QueryRecord{Time: 0, Query: "xx"})
	if _, err := Transients(tr, 0, DefaultTransientConfig()); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Transients(tr, 10, TransientConfig{TrainFrac: 0, Ratio: 5, MinCount: 1}); err == nil {
		t.Error("zero TrainFrac accepted")
	}
	if _, err := Transients(tr, 10, TransientConfig{TrainFrac: 0.5, Ratio: 0.5, MinCount: 1}); err == nil {
		t.Error("Ratio below 1 accepted")
	}
	if _, err := Transients(tr, 10, TransientConfig{TrainFrac: 0.5, Ratio: 5, MinCount: 1}); err == nil {
		t.Error("single-record trace accepted (training prefix degenerate)")
	}
}

func TestTransientsDetectBurst(t *testing.T) {
	// 1000 queries over 1000s: steady "alpha beta", plus a burst of
	// "flashterm" in [600, 700).
	var recs []trace.QueryRecord
	for i := 0; i < 1000; i++ {
		q := "alpha beta"
		if i >= 600 && i < 700 && i%2 == 0 {
			q = "flashterm gamma"
		}
		recs = append(recs, trace.QueryRecord{Time: int64(i), Query: q})
	}
	tr := queryTrace(1000, recs...)
	pts, err := Transients(tr, 100, TransientConfig{TrainFrac: 0.2, Ratio: 4, MinCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	burstIntervals := 0
	for _, p := range pts {
		for _, term := range p.Terms {
			if term == "alpha" || term == "beta" {
				t.Errorf("steady term %q flagged transient at t=%d", term, p.Start)
			}
			if term == "flashterm" {
				burstIntervals++
				if p.Start < 500 || p.Start >= 700 {
					t.Errorf("flashterm flagged outside burst window at t=%d", p.Start)
				}
			}
		}
	}
	if burstIntervals == 0 {
		t.Error("burst never detected")
	}
	sum := TransientSummary(pts)
	if sum.N != len(pts) {
		t.Errorf("summary N = %d", sum.N)
	}
}

func TestTransientsNoBurstsQuietTrace(t *testing.T) {
	var recs []trace.QueryRecord
	for i := 0; i < 500; i++ {
		recs = append(recs, trace.QueryRecord{Time: int64(i), Query: "steady eddy"})
	}
	pts, err := Transients(queryTrace(500, recs...), 50, DefaultTransientConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Count != 0 {
			t.Errorf("quiet trace flagged %d transients at t=%d: %v", p.Count, p.Start, p.Terms)
		}
	}
}

// --- Integration with the query generator: the three headline shapes. ---

func genWorkload(t *testing.T, seed uint64, fileTerms []string) *querygen.Workload {
	t.Helper()
	cfg := querygen.DefaultConfig(seed)
	cfg.Queries = 40000
	cfg.Duration = 48 * 3600
	cfg.TailSize = 5000
	cfg.FileTerms = fileTerms
	w, err := querygen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestIntegrationStabilityHigh(t *testing.T) {
	w := genWorkload(t, 21, nil)
	ivs, err := Intervals(w.Trace, DefaultIntervalConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := StabilitySeries(ivs)
	// Skip the warmup the paper also skips.
	var o stats.Online
	for _, p := range series[2:] {
		o.Add(p.Value)
	}
	if o.Mean() < 0.70 {
		t.Errorf("mean stability = %v, want > 0.70 (paper: >0.9 at full scale)", o.Mean())
	}
}

func TestIntegrationMismatchLow(t *testing.T) {
	// File terms: a synthetic ranked vocabulary. Overlap configured low.
	fileTerms := make([]string, 3000)
	for i := range fileTerms {
		fileTerms[i] = fmt.Sprintf("fterm%04d", i)
	}
	w := genWorkload(t, 22, fileTerms)
	ivs, err := Intervals(w.Trace, DefaultIntervalConfig())
	if err != nil {
		t.Fatal(err)
	}
	fstar := make(map[string]struct{})
	for _, s := range fileTerms[:200] {
		fstar[s] = struct{}{}
	}
	series := MismatchSeries(ivs, fstar)
	var o stats.Online
	for _, p := range series[2:] {
		o.Add(p.Value)
	}
	if o.Mean() > 0.25 {
		t.Errorf("mean mismatch similarity = %v, want < 0.25 (paper: <0.20)", o.Mean())
	}
}

func TestIntegrationTransientsLowMeanHighVariance(t *testing.T) {
	w := genWorkload(t, 23, nil)
	pts, err := Transients(w.Trace, 3600, DefaultTransientConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := TransientSummary(pts)
	if sum.Mean > 10 {
		t.Errorf("mean transient count = %v, want < 10 (paper: low mean)", sum.Mean)
	}
	if sum.Max < 1 {
		t.Error("no transients ever detected; generator bursts invisible")
	}
}

func BenchmarkIntervals(b *testing.B) {
	cfg := querygen.DefaultConfig(1)
	cfg.Queries = 50000
	cfg.Duration = 24 * 3600
	w, err := querygen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Intervals(w.Trace, DefaultIntervalConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
