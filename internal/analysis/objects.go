// Package analysis implements the paper's measurements: replica
// distributions of object names (Figures 1–2), term-level distributions
// (Figure 3), iTunes annotation distributions (Figure 4), and the temporal
// query-term analyses (Figures 5–7) — popularity tracking per evaluation
// interval, transient-popularity detection against a trained history, the
// stability of the popular-term set, and the query/file term mismatch.
//
// Every function consumes trace files (the crawler/logger output), never
// generator internals, so the measurement path matches the paper's.
package analysis

import (
	"fmt"
	"sort"

	"querycentric/internal/stats"
	"querycentric/internal/terms"
	"querycentric/internal/trace"
	"querycentric/internal/zipf"
)

// DistReport summarizes a "number of peers holding X" distribution, the
// layout of Figures 1–4.
type DistReport struct {
	Unique          int     // distinct keys (names / terms / annotations)
	TotalPlacements int     // observations contributing
	SingletonFrac   float64 // fraction of keys on exactly one peer
	Counts          []int   // per-key distinct-peer counts (unordered)
	Fit             zipf.Fit
	FitErr          error // non-nil if too little data to fit
}

// FracAtMost returns the fraction of keys held by at most n peers.
func (r *DistReport) FracAtMost(n int) float64 { return stats.FractionAtMost(r.Counts, n) }

// FracAtLeast returns the fraction of keys held by at least n peers.
func (r *DistReport) FracAtLeast(n int) float64 { return stats.FractionAtLeast(r.Counts, n) }

// RankFreq returns the rank–frequency series of the distribution.
func (r *DistReport) RankFreq() []stats.RankFreqPoint { return stats.RankFrequency(r.Counts) }

// String renders the headline numbers.
func (r *DistReport) String() string {
	return fmt.Sprintf("unique=%d placements=%d singleton=%.1f%% zipf_s=%.2f",
		r.Unique, r.TotalPlacements, 100*r.SingletonFrac, r.Fit.S)
}

// Replicas computes the Figure 1 (sanitize=false) or Figure 2
// (sanitize=true) distribution: for each distinct shared name, the number
// of distinct peers sharing it. Replicas are, as in the paper, files with
// identical (optionally sanitized) names.
func Replicas(tr *trace.ObjectTrace, sanitize bool) *DistReport {
	return distinctPeers(tr, func(name string) []string {
		if sanitize {
			s := terms.Sanitize(name)
			if s == "" {
				return nil
			}
			return []string{s}
		}
		return []string{name}
	})
}

// TermPeers computes the Figure 3 distribution: for each term produced by
// the protocol tokenization of shared names, the number of distinct peers
// holding at least one file containing the term.
func TermPeers(tr *trace.ObjectTrace) *DistReport {
	return distinctPeers(tr, terms.Tokenize)
}

// distinctPeers counts, for every key derived from the records, the number
// of distinct peers contributing it.
func distinctPeers(tr *trace.ObjectTrace, keysOf func(string) []string) *DistReport {
	// Sort a copy of record indices by peer so a single "last peer seen"
	// per key suffices for distinctness.
	recs := make([]trace.ObjectRecord, len(tr.Records))
	copy(recs, tr.Records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Peer < recs[j].Peer })

	type entry struct {
		lastPeer int
		count    int
	}
	seen := map[string]*entry{}
	placements := 0
	for _, rec := range recs {
		for _, key := range keysOf(rec.Name) {
			e, ok := seen[key]
			if !ok {
				seen[key] = &entry{lastPeer: rec.Peer, count: 1}
				placements++
				continue
			}
			if e.lastPeer != rec.Peer {
				e.lastPeer = rec.Peer
				e.count++
				placements++
			}
		}
	}
	rep := &DistReport{Unique: len(seen), TotalPlacements: placements}
	rep.Counts = make([]int, 0, len(seen))
	singles := 0
	for _, e := range seen {
		rep.Counts = append(rep.Counts, e.count)
		if e.count == 1 {
			singles++
		}
	}
	if rep.Unique > 0 {
		rep.SingletonFrac = float64(singles) / float64(rep.Unique)
	}
	rep.Fit, rep.FitErr = zipf.FitRankFrequency(rep.Counts)
	return rep
}

// TermCount is one entry of a ranked term popularity list.
type TermCount struct {
	Term  string
	Count int
}

// RankedFileTerms returns the terms of all shared names ranked by total
// occurrence count (most popular first; ties broken lexicographically for
// determinism). This ranking defines the popular file term set F* used by
// the Figure 7 mismatch analysis.
func RankedFileTerms(tr *trace.ObjectTrace) []TermCount {
	counts := map[string]int{}
	for _, rec := range tr.Records {
		for _, tok := range terms.Tokenize(rec.Name) {
			counts[tok]++
		}
	}
	return rankCounts(counts)
}

func rankCounts(counts map[string]int) []TermCount {
	out := make([]TermCount, 0, len(counts))
	for t, c := range counts {
		out = append(out, TermCount{Term: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// TopTerms returns the first k terms of a ranked list as a set.
func TopTerms(ranked []TermCount, k int) map[string]struct{} {
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make(map[string]struct{}, k)
	for _, tc := range ranked[:k] {
		out[tc.Term] = struct{}{}
	}
	return out
}

// Annotation selects which iTunes annotation a report covers.
type Annotation int

// The four annotations of Figure 4.
const (
	AnnotationSong Annotation = iota
	AnnotationGenre
	AnnotationAlbum
	AnnotationArtist
)

// String names the annotation.
func (a Annotation) String() string {
	switch a {
	case AnnotationSong:
		return "song"
	case AnnotationGenre:
		return "genre"
	case AnnotationAlbum:
		return "album"
	case AnnotationArtist:
		return "artist"
	default:
		return fmt.Sprintf("Annotation(%d)", int(a))
	}
}

// AnnotationReport extends DistReport with the missing-annotation fraction
// (the paper reports 8.7% of songs without genre, 8.1% without album).
type AnnotationReport struct {
	DistReport
	Annotation  Annotation
	MissingFrac float64 // fraction of song records with an empty annotation
}

// Annotations computes the Figure 4 distribution for one annotation: for
// each distinct annotation value, the number of distinct clients with at
// least one song carrying it.
func Annotations(tr *trace.SongTrace, a Annotation) (*AnnotationReport, error) {
	value := func(r *trace.SongRecord) string {
		switch a {
		case AnnotationSong:
			return r.Track
		case AnnotationGenre:
			return r.Genre
		case AnnotationAlbum:
			return r.Album
		case AnnotationArtist:
			return r.Artist
		}
		return ""
	}
	if a < AnnotationSong || a > AnnotationArtist {
		return nil, fmt.Errorf("analysis: unknown annotation %d", a)
	}

	recs := make([]trace.SongRecord, len(tr.Records))
	copy(recs, tr.Records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Peer < recs[j].Peer })

	type entry struct {
		lastPeer int
		count    int
	}
	seen := map[string]*entry{}
	missing, placements := 0, 0
	for i := range recs {
		v := value(&recs[i])
		if v == "" {
			missing++
			continue
		}
		e, ok := seen[v]
		if !ok {
			seen[v] = &entry{lastPeer: recs[i].Peer, count: 1}
			placements++
			continue
		}
		if e.lastPeer != recs[i].Peer {
			e.lastPeer = recs[i].Peer
			e.count++
			placements++
		}
	}
	rep := &AnnotationReport{Annotation: a}
	rep.Unique = len(seen)
	rep.TotalPlacements = placements
	if len(tr.Records) > 0 {
		rep.MissingFrac = float64(missing) / float64(len(tr.Records))
	}
	rep.Counts = make([]int, 0, len(seen))
	singles := 0
	for _, e := range seen {
		rep.Counts = append(rep.Counts, e.count)
		if e.count == 1 {
			singles++
		}
	}
	if rep.Unique > 0 {
		rep.SingletonFrac = float64(singles) / float64(rep.Unique)
	}
	rep.Fit, rep.FitErr = zipf.FitRankFrequency(rep.Counts)
	return rep, nil
}
