package chord

import (
	"math"
	"testing"

	"querycentric/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestRingSortedAndComplete(t *testing.T) {
	r, err := New(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 500 {
		t.Fatalf("size = %d", r.Size())
	}
	nodes := r.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].ID <= nodes[i-1].ID {
			t.Fatal("nodes not sorted by ID")
		}
	}
	for i := 0; i < 500; i++ {
		if r.NodeByIndex(i) == nil {
			t.Fatalf("missing node index %d", i)
		}
	}
}

func TestSuccessorOwnership(t *testing.T) {
	r, err := New(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	nodes := r.Nodes()
	// A key equal to a node's ID is owned by that node.
	if got := r.Successor(nodes[7].ID); got != nodes[7] {
		t.Error("key equal to node ID not owned by that node")
	}
	// A key just above a node's ID is owned by the next node.
	if got := r.Successor(nodes[7].ID + 1); got != nodes[8] {
		t.Error("key after node ID not owned by the successor")
	}
	// Wrap-around: a key above the max ID is owned by the first node.
	if got := r.Successor(nodes[99].ID + 1); got != nodes[0] {
		t.Error("wrap-around ownership broken")
	}
}

func TestLookupCorrectness(t *testing.T) {
	r, err := New(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(4)
	for trial := 0; trial < 500; trial++ {
		key := g.Uint64()
		from := r.NodeByIndex(g.Intn(1000))
		owner, hops, err := r.Lookup(key, from)
		if err != nil {
			t.Fatal(err)
		}
		if owner != r.Successor(key) {
			t.Fatalf("lookup returned wrong owner for key %x", key)
		}
		if hops < 0 || hops > 64 {
			t.Fatalf("hops = %d", hops)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	r, err := New(4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(6)
	total := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		_, hops, err := r.Lookup(g.Uint64(), r.NodeByIndex(g.Intn(4096)))
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / trials
	logN := math.Log2(4096) // 12
	if mean > logN {
		t.Errorf("mean hops %.2f exceeds log2(n)=%.0f", mean, logN)
	}
	if mean < logN/4 {
		t.Errorf("mean hops %.2f suspiciously small", mean)
	}
}

func TestLookupFromOwner(t *testing.T) {
	r, _ := New(50, 7)
	n := r.Nodes()[3]
	owner, hops, err := r.Lookup(n.ID, n)
	if err != nil {
		t.Fatal(err)
	}
	if owner != n || hops != 0 {
		t.Errorf("self lookup: owner=%v hops=%d", owner.Index, hops)
	}
	if _, _, err := r.Lookup(1, nil); err == nil {
		t.Error("nil start node accepted")
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("madonna") != HashKey("madonna") {
		t.Error("hash not deterministic")
	}
	if HashKey("madonna") == HashKey("madonn") {
		t.Error("suspicious collision")
	}
}

func TestJoinLeave(t *testing.T) {
	r, err := New(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddNode(500, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddNode(500, 9); err == nil {
		t.Error("duplicate index accepted")
	}
	r.Stabilize()
	g := rng.New(10)
	for i := 0; i < 100; i++ {
		key := g.Uint64()
		owner, _, err := r.Lookup(key, r.NodeByIndex(500))
		if err != nil {
			t.Fatal(err)
		}
		if owner != r.Successor(key) {
			t.Fatal("lookup wrong after join")
		}
	}
	if err := r.RemoveNode(500); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveNode(500); err == nil {
		t.Error("double removal accepted")
	}
	r.Stabilize()
	for i := 0; i < 100; i++ {
		key := g.Uint64()
		owner, _, err := r.Lookup(key, r.NodeByIndex(3))
		if err != nil {
			t.Fatal(err)
		}
		if owner != r.Successor(key) {
			t.Fatal("lookup wrong after leave")
		}
	}
}

func TestRemoveLastNode(t *testing.T) {
	r, _ := New(1, 11)
	if err := r.RemoveNode(0); err == nil {
		t.Error("removing last node accepted")
	}
}

func TestStore(t *testing.T) {
	r, err := New(200, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(r)
	key := HashKey("aaron neville - i dont know much.mp3")
	pub := r.NodeByIndex(5)
	if _, err := s.Put(key, 42, pub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(key, 77, r.NodeByIndex(100)); err != nil {
		t.Fatal(err)
	}
	vals, hops, err := s.Get(key, r.NodeByIndex(150))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 42 || vals[1] != 77 {
		t.Errorf("values = %v", vals)
	}
	if hops < 0 || hops > 64 {
		t.Errorf("hops = %d", hops)
	}
	// Missing key returns nothing.
	if vals, _, err := s.Get(HashKey("nope"), pub); err != nil || len(vals) != 0 {
		t.Errorf("missing key: %v, %v", vals, err)
	}
}

func BenchmarkLookup(b *testing.B) {
	r, err := New(10000, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Lookup(g.Uint64(), r.NodeByIndex(i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}
