// Package chord implements a Chord distributed hash table over simulated
// nodes: a 64-bit identifier ring, finger tables, successor lists and
// iterative greedy lookup. It is the structured-overlay baseline the paper
// compares hybrid search against ("a hybrid P2P system ... would perform
// worse than a DHT-based search").
//
// The implementation routes lookups through finger tables exactly as Chord
// does (closest preceding finger, then successor), counting hops; transport
// and failure handling are simulated since the experiments only need
// routing cost and ownership semantics.
package chord

import (
	"fmt"
	"sort"

	"querycentric/internal/rng"
)

// M is the identifier-space width in bits.
const M = 64

// fingerCount bounds the finger table; 64 fingers cover the full space.
const fingerCount = M

// Node is one DHT participant.
type Node struct {
	ID    uint64 // position on the ring
	Index int    // application-level node index (e.g. overlay vertex)

	fingers    []int // indices into the ring's sorted node slice
	succListID []uint64
}

// Ring is a stabilized Chord ring.
type Ring struct {
	nodes []*Node // sorted by ID
	byIdx map[int]*Node
}

// HashKey maps an object key string onto the ring (FNV-1a, finalized).
func HashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// New builds a ring of n nodes with pseudo-random identifiers derived from
// seed, then stabilizes (builds fingers and successor lists).
func New(n int, seed uint64) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chord: node count must be positive, got %d", n)
	}
	r := rng.NewNamed(seed, "chord/ids")
	ring := &Ring{byIdx: make(map[int]*Node, n)}
	used := map[uint64]bool{}
	for i := 0; i < n; i++ {
		id := r.Uint64()
		for used[id] {
			id = r.Uint64()
		}
		used[id] = true
		node := &Node{ID: id, Index: i}
		ring.nodes = append(ring.nodes, node)
		ring.byIdx[i] = node
	}
	sort.Slice(ring.nodes, func(i, j int) bool { return ring.nodes[i].ID < ring.nodes[j].ID })
	ring.Stabilize()
	return ring, nil
}

// Size returns the number of nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// NodeByIndex returns the node with the given application index, or nil.
func (r *Ring) NodeByIndex(idx int) *Node { return r.byIdx[idx] }

// Nodes returns the ring's nodes in ID order (callers must not mutate).
func (r *Ring) Nodes() []*Node { return r.nodes }

// successorPos returns the position (in r.nodes) of the first node with
// ID >= id, wrapping.
func (r *Ring) successorPos(id uint64) int {
	pos := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= id })
	if pos == len(r.nodes) {
		return 0
	}
	return pos
}

// Successor returns the node owning id.
func (r *Ring) Successor(id uint64) *Node {
	return r.nodes[r.successorPos(id)]
}

// Stabilize rebuilds every node's finger table and successor list. Call
// after AddNode/RemoveNode batches.
func (r *Ring) Stabilize() {
	const succListLen = 4
	for pos, n := range r.nodes {
		n.fingers = n.fingers[:0]
		for k := 0; k < fingerCount; k++ {
			target := n.ID + (uint64(1) << uint(k)) // wraps naturally
			n.fingers = append(n.fingers, r.successorPos(target))
		}
		n.succListID = n.succListID[:0]
		for s := 1; s <= succListLen; s++ {
			n.succListID = append(n.succListID, r.nodes[(pos+s)%len(r.nodes)].ID)
		}
	}
}

// inOpenInterval reports whether x ∈ (a, b) on the ring.
func inOpenInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b // wrapped
}

// Lookup routes from the given start node to the owner of key, returning
// the owner and the hop count (0 when the start node owns the key).
func (r *Ring) Lookup(key uint64, from *Node) (*Node, int, error) {
	if from == nil {
		return nil, 0, fmt.Errorf("chord: lookup from nil node")
	}
	owner := r.Successor(key)
	cur := from
	hops := 0
	for cur != owner {
		if hops > 2*len(r.nodes) {
			return nil, hops, fmt.Errorf("chord: lookup for %x did not converge", key)
		}
		next := r.closestPrecedingFinger(cur, key)
		if next == cur {
			// No finger strictly precedes the key: the successor owns it.
			next = r.nodes[(r.posOf(cur)+1)%len(r.nodes)]
		}
		cur = next
		hops++
	}
	return owner, hops, nil
}

// posOf locates a node's position in the sorted slice.
func (r *Ring) posOf(n *Node) int {
	return r.successorPos(n.ID)
}

// closestPrecedingFinger returns the finger of n closest to (but strictly
// preceding) key, or n if none.
func (r *Ring) closestPrecedingFinger(n *Node, key uint64) *Node {
	for k := len(n.fingers) - 1; k >= 0; k-- {
		f := r.nodes[n.fingers[k]]
		if f != n && inOpenInterval(f.ID, n.ID, key) {
			return f
		}
	}
	return n
}

// AddNode inserts a node with the given application index and re-sorts; the
// caller must Stabilize before further lookups.
func (r *Ring) AddNode(idx int, seed uint64) (*Node, error) {
	if _, exists := r.byIdx[idx]; exists {
		return nil, fmt.Errorf("chord: node index %d already present", idx)
	}
	g := rng.NewNamed(seed, fmt.Sprintf("chord/join/%d", idx))
	id := g.Uint64()
	for r.hasID(id) {
		id = g.Uint64()
	}
	n := &Node{ID: id, Index: idx}
	r.nodes = append(r.nodes, n)
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].ID < r.nodes[j].ID })
	r.byIdx[idx] = n
	return n, nil
}

// RemoveNode removes the node with the given application index; the caller
// must Stabilize before further lookups.
func (r *Ring) RemoveNode(idx int) error {
	n, ok := r.byIdx[idx]
	if !ok {
		return fmt.Errorf("chord: node index %d not present", idx)
	}
	if len(r.nodes) == 1 {
		return fmt.Errorf("chord: cannot remove the last node")
	}
	delete(r.byIdx, idx)
	pos := r.posOf(n)
	r.nodes = append(r.nodes[:pos], r.nodes[pos+1:]...)
	return nil
}

func (r *Ring) hasID(id uint64) bool {
	pos := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= id })
	return pos < len(r.nodes) && r.nodes[pos].ID == id
}

// Store is a simple DHT key→values store layered on ring ownership: values
// live at the key's owner node. It models object publication in hybrid
// systems.
type Store struct {
	ring *Ring
	data map[int]map[uint64][]int32 // owner index -> key -> values
}

// NewStore creates an empty store on a ring.
func NewStore(ring *Ring) *Store {
	return &Store{ring: ring, data: map[int]map[uint64][]int32{}}
}

// Put publishes value under key, routed from the publishing node; returns
// the routing hop count.
func (s *Store) Put(key uint64, value int32, from *Node) (int, error) {
	owner, hops, err := s.ring.Lookup(key, from)
	if err != nil {
		return hops, err
	}
	m := s.data[owner.Index]
	if m == nil {
		m = map[uint64][]int32{}
		s.data[owner.Index] = m
	}
	m[key] = append(m[key], value)
	return hops, nil
}

// Get retrieves the values stored under key, routed from the querying node.
func (s *Store) Get(key uint64, from *Node) ([]int32, int, error) {
	owner, hops, err := s.ring.Lookup(key, from)
	if err != nil {
		return nil, hops, err
	}
	return s.data[owner.Index][key], hops, nil
}
