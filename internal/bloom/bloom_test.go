package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		n  int
		fp float64
	}{{0, 0.01}, {-1, 0.01}, {100, 0}, {100, 1}, {100, -0.5}} {
		if _, err := New(tc.n, tc.fp); err == nil {
			t.Errorf("New(%d, %v): expected error", tc.n, tc.fp)
		}
		if _, err := NewCounting(tc.n, tc.fp); err == nil {
			t.Errorf("NewCounting(%d, %v): expected error", tc.n, tc.fp)
		}
	}
	if _, err := NewWithParams(0, 3); err == nil {
		t.Error("NewWithParams(0,3): expected error")
	}
	if _, err := NewWithParams(64, 0); err == nil {
		t.Error("NewWithParams(64,0): expected error")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("term-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("term-%d", i)) {
			t.Fatalf("false negative for term-%d", i)
		}
	}
	if f.N() != 1000 {
		t.Errorf("N = %d", f.N())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f, _ := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 { // target 0.01, allow 3x slack
		t.Errorf("false positive rate %v too high", rate)
	}
	if est := f.EstimatedFPRate(); est > 0.03 {
		t.Errorf("estimated FP rate %v too high", est)
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f, _ := New(500, 0.01)
	check := func(s string) bool {
		f.Add(s)
		return f.Contains(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	a, _ := NewWithParams(1024, 4)
	b, _ := NewWithParams(1024, 4)
	a.Add("alpha")
	b.Add("beta")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("alpha") || !a.Contains("beta") {
		t.Error("union lost an element")
	}
	c, _ := NewWithParams(2048, 4)
	if err := a.Union(c); err == nil {
		t.Error("expected parameter mismatch error")
	}
}

func TestReset(t *testing.T) {
	f, _ := New(100, 0.01)
	f.Add("x")
	f.Reset()
	if f.Contains("x") {
		t.Error("Reset did not clear bits")
	}
	if f.N() != 0 || f.FillRatio() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestFillRatioGrows(t *testing.T) {
	f, _ := New(1000, 0.01)
	before := f.FillRatio()
	for i := 0; i < 500; i++ {
		f.Add(fmt.Sprintf("t%d", i))
	}
	if f.FillRatio() <= before {
		t.Error("fill ratio did not grow")
	}
	if f.SizeBytes() <= 0 || f.M() == 0 || f.K() < 1 {
		t.Error("bad parameter accessors")
	}
}

func TestCountingAddRemove(t *testing.T) {
	c, err := NewCounting(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	c.Add("madonna")
	c.Add("madonna")
	if !c.Contains("madonna") {
		t.Fatal("missing after add")
	}
	c.Remove("madonna")
	if !c.Contains("madonna") {
		t.Fatal("second copy lost after single remove")
	}
	c.Remove("madonna")
	if c.Contains("madonna") {
		t.Fatal("still present after removing all copies")
	}
	if c.N() != 0 {
		t.Errorf("N = %d, want 0", c.N())
	}
}

func TestCountingNoFalseNegativesUnderChurn(t *testing.T) {
	c, _ := NewCounting(2000, 0.01)
	// Insert a stable set plus churners; remove churners; stable set must
	// remain present.
	for i := 0; i < 500; i++ {
		c.Add(fmt.Sprintf("stable-%d", i))
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			c.Add(fmt.Sprintf("churn-%d-%d", round, i))
		}
		for i := 0; i < 100; i++ {
			c.Remove(fmt.Sprintf("churn-%d-%d", round, i))
		}
	}
	for i := 0; i < 500; i++ {
		if !c.Contains(fmt.Sprintf("stable-%d", i)) {
			t.Fatalf("churn caused false negative for stable-%d", i)
		}
	}
}

func TestCountingToFilter(t *testing.T) {
	c, _ := NewCounting(100, 0.01)
	c.Add("a")
	c.Add("b")
	f := c.ToFilter()
	if !f.Contains("a") || !f.Contains("b") {
		t.Error("snapshot lost elements")
	}
	if f.N() != 2 {
		t.Errorf("snapshot N = %d", f.N())
	}
}

func BenchmarkAdd(b *testing.B) {
	f, _ := New(1000000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add("the quick brown fox")
	}
}

func BenchmarkContains(b *testing.B) {
	f, _ := New(1000000, 0.01)
	for i := 0; i < 100000; i++ {
		f.Add(fmt.Sprintf("t%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains("t12345")
	}
}
