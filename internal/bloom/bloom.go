// Package bloom provides Bloom filters and counting Bloom filters.
//
// They are the substrate of the synopsis-based search extension (the
// authors' follow-on work, reference [9] of the paper): each peer summarizes
// its content terms in a compact synopsis that neighbours consult before
// forwarding a query. The counting variant supports deletion, which the
// adaptive synopsis uses when transiently popular terms age out.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a classic Bloom filter over strings.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // number of inserted elements
}

// New creates a filter sized for expected n elements at the target false
// positive probability fp (0 < fp < 1).
func New(n int, fp float64) (*Filter, error) {
	m, k, err := optimal(n, fp)
	if err != nil {
		return nil, err
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}, nil
}

// NewWithParams creates a filter with m bits and k hash functions.
func NewWithParams(m uint64, k int) (*Filter, error) {
	if m == 0 || k <= 0 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}, nil
}

func optimal(n int, fp float64) (m uint64, k int, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("bloom: expected elements must be positive, got %d", n)
	}
	if fp <= 0 || fp >= 1 {
		return 0, 0, fmt.Errorf("bloom: false positive rate must be in (0,1), got %g", fp)
	}
	mf := -float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)
	m = uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	k = int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return m, k, nil
}

// hash2 computes two independent 64-bit hashes of s; the k indices are
// derived with double hashing (Kirsch–Mitzenmacher).
func hash2(s string) (uint64, uint64) {
	// FNV-1a with two different offset bases gives two independent-enough
	// streams for double hashing.
	const prime = 1099511628211
	h1 := uint64(14695981039346656037)
	h2 := uint64(1099511628211*31 + 7)
	for i := 0; i < len(s); i++ {
		c := uint64(s[i])
		h1 = (h1 ^ c) * prime
		h2 = (h2 ^ (c + 0x9e)) * prime
	}
	// Finalize to decorrelate.
	h1 ^= h1 >> 33
	h1 *= 0xff51afd7ed558ccd
	h1 ^= h1 >> 33
	h2 ^= h2 >> 29
	h2 *= 0xc4ceb9fe1a85ec53
	h2 ^= h2 >> 32
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts s.
func (f *Filter) Add(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// Contains reports whether s may have been inserted. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(s string) bool {
	h1, h2 := hash2(s)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// N returns the number of Add calls.
func (f *Filter) N() int { return f.n }

// M returns the number of bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPRate returns the expected false positive probability at the
// current fill ratio.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Union merges other into f. Both filters must have identical parameters.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: parameter mismatch (m=%d,k=%d) vs (m=%d,k=%d)", f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Counting is a counting Bloom filter supporting deletion. Counters are
// 8-bit and saturate at 255 (saturated counters are never decremented, so
// deletion never produces false negatives).
type Counting struct {
	counters []uint8
	m        uint64
	k        int
	n        int
}

// NewCounting creates a counting filter for expected n elements at false
// positive rate fp.
func NewCounting(n int, fp float64) (*Counting, error) {
	m, k, err := optimal(n, fp)
	if err != nil {
		return nil, err
	}
	return &Counting{counters: make([]uint8, m), m: m, k: k}, nil
}

// Add inserts s.
func (c *Counting) Add(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < c.k; i++ {
		idx := (h1 + uint64(i)*h2) % c.m
		if c.counters[idx] < math.MaxUint8 {
			c.counters[idx]++
		}
	}
	c.n++
}

// Remove deletes one prior insertion of s. Removing an element that was
// never added may corrupt the filter, as with any counting Bloom filter.
func (c *Counting) Remove(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < c.k; i++ {
		idx := (h1 + uint64(i)*h2) % c.m
		if c.counters[idx] > 0 && c.counters[idx] < math.MaxUint8 {
			c.counters[idx]--
		}
	}
	if c.n > 0 {
		c.n--
	}
}

// Contains reports whether s may be present.
func (c *Counting) Contains(s string) bool {
	h1, h2 := hash2(s)
	for i := 0; i < c.k; i++ {
		idx := (h1 + uint64(i)*h2) % c.m
		if c.counters[idx] == 0 {
			return false
		}
	}
	return true
}

// N returns the net number of elements (adds minus removes).
func (c *Counting) N() int { return c.n }

// ToFilter snapshots the counting filter into a plain Bloom filter with the
// same parameters (counter > 0 becomes a set bit), e.g. for cheap gossip.
func (c *Counting) ToFilter() *Filter {
	f := &Filter{bits: make([]uint64, (c.m+63)/64), m: c.m, k: c.k, n: c.n}
	for idx, v := range c.counters {
		if v > 0 {
			f.bits[idx/64] |= 1 << (uint64(idx) % 64)
		}
	}
	return f
}
