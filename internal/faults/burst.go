package faults

import (
	"fmt"
	"math"
	"sort"

	"querycentric/internal/rng"
)

// Correlated failure bursts. The plane's per-call fault classes model
// *independent* failures: each dial or delivery rolls on its own. Real
// outages are correlated — a power event, a routing flap or an ISP block
// takes down a sizeable fraction of the population in one instant. A Burst
// is that instant, expressed as data so the discrete-event engine can
// schedule it like any other event: at Time, a deterministic Frac of the
// population crashes (or, with Polite > 0, partly announces its exit).
//
// Victim selection is a pure function of (seed, burst time, population
// size): a partial Fisher–Yates shuffle on a stream derived from those
// three, so two runs — or the repair and no-repair arms of one comparison
// — kill exactly the same peers.

// Burst is one correlated failure event.
type Burst struct {
	// Time is the simulated second the burst fires.
	Time int64 `json:"time"`
	// Frac is the fraction of the population taken down, rounded to the
	// nearest whole peer.
	Frac float64 `json:"frac"`
	// Polite is the probability a victim announces its exit with a Bye
	// (drawn per victim). Zero — the default — models a correlated crash:
	// every victim vanishes silently, leaving ghost edges.
	Polite float64 `json:"polite"`
}

// Validate rejects bursts that cannot be scheduled.
func (b Burst) Validate() error {
	switch {
	case b.Time <= 0:
		return fmt.Errorf("faults: burst Time must be positive, got %d", b.Time)
	case math.IsNaN(b.Frac) || b.Frac < 0 || b.Frac > 1:
		return fmt.Errorf("faults: burst Frac must be in [0,1], got %v", b.Frac)
	case math.IsNaN(b.Polite) || b.Polite < 0 || b.Polite > 1:
		return fmt.Errorf("faults: burst Polite must be in [0,1], got %v", b.Polite)
	}
	return nil
}

// Victims returns the peer IDs the burst takes down in a population of n,
// in ascending order. The selection is deterministic in (seed, b.Time, n)
// and independent of any other randomness in the run.
func (b Burst) Victims(seed uint64, n int) []int {
	k := int(math.Round(b.Frac * float64(n)))
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	r := rng.NewNamed(seed, fmt.Sprintf("faults/burst/%d", b.Time))
	// Partial Fisher–Yates: the first k draws of a full shuffle.
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	out := ids[:k:k]
	sort.Ints(out)
	return out
}

// ValidateBursts checks a whole schedule: each burst valid, times strictly
// increasing so (seed, time) streams never collide.
func ValidateBursts(bursts []Burst) error {
	for i, b := range bursts {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("faults: burst %d: %w", i, err)
		}
		if i > 0 && b.Time <= bursts[i-1].Time {
			return fmt.Errorf("faults: burst %d at t=%d not after burst %d at t=%d",
				i, b.Time, i-1, bursts[i-1].Time)
		}
	}
	return nil
}
