// Package faults is the deterministic fault-injection plane for the wire
// substrate. The paper's measurements come from crawling a live,
// failure-prone network; this package makes those failure modes exist in
// the in-process substitute so the measurement path (crawler, floods) can
// be exercised — and hardened — against them.
//
// Every fault decision is drawn from a stream derived from (seed, site,
// key, nth-call-for-that-key), so schedules are reproducible from the root
// seed, independent of unrelated call ordering, and two runs with the same
// seed observe identical fault schedules. A nil *Plane, or a Config whose
// probabilities are all zero, injects nothing and draws nothing: the plane
// is provably inert by default.
package faults

import (
	"sync"

	"querycentric/internal/obs"
	"querycentric/internal/rng"
)

// Config holds the injectable fault probabilities. The zero value disables
// every fault.
type Config struct {
	// Seed roots the fault schedule. Two planes with equal Config produce
	// identical schedules.
	Seed uint64

	// DialTimeout is the probability that a Dial attempt times out before
	// a connection is established (transient: a later attempt re-rolls).
	DialTimeout float64
	// HandshakeStall is the probability that the servent stalls during the
	// GNUTELLA/0.6 handshake: it reads the client's greeting, then goes
	// silent and drops the connection.
	HandshakeStall float64
	// ConnReset is the probability that an established connection is reset
	// mid-stream: after a bounded number of bytes delivered to the client,
	// reads and writes fail with ErrConnReset.
	ConnReset float64
	// TruncateWrite is the probability that the servent's response stream
	// is cut mid-descriptor: the client receives a truncated final message
	// and then a clean EOF.
	TruncateWrite float64
	// PeerDepart is the per-descriptor probability that the serving peer
	// departs mid-session (the connection closes between response batches).
	PeerDepart float64
	// MessageLoss is the per-hop probability that a flooded descriptor is
	// transmitted but never delivered.
	MessageLoss float64
}

// Enabled reports whether any fault probability is positive.
func (c Config) Enabled() bool {
	return c.DialTimeout > 0 || c.HandshakeStall > 0 || c.ConnReset > 0 ||
		c.TruncateWrite > 0 || c.PeerDepart > 0 || c.MessageLoss > 0
}

// Injection sites, used as stream names so each fault class draws from an
// independent sequence.
const (
	siteDial      = "faults/dial"
	siteHandshake = "faults/handshake"
	siteReset     = "faults/reset"
	siteTruncate  = "faults/truncate"
	siteDepart    = "faults/depart"
	siteLoss      = "faults/loss"
)

// Plane is one fault-injection engine. It is safe for concurrent use (the
// servent side of a connection runs on its own goroutine). All methods are
// nil-safe: a nil plane injects nothing.
type Plane struct {
	cfg Config

	// om holds the per-site fired counters published to an attached
	// observability registry. The zero value (all-nil handles) records
	// nothing; Counter increments on nil handles are no-ops, so injection
	// sites never branch on whether a registry is attached.
	om planeObs

	mu       sync.Mutex
	counters map[counterKey]uint64
	alive    []bool // liveness mask; nil means every peer is alive
}

// planeObs carries one fired-event counter per injection site.
type planeObs struct {
	dial, handshake, reset, truncate, depart, loss *obs.Counter
}

// Instrument attaches fired-event counters (faults_<site>_fired_total) to
// reg; a nil reg detaches. Counts are sums of independent fire decisions,
// so they are invariant under scheduling. Attach before the plane is
// shared across goroutines: the handles are written without locking.
func (p *Plane) Instrument(reg *obs.Registry) {
	if p == nil {
		return
	}
	if reg == nil {
		p.om = planeObs{}
		return
	}
	p.om = planeObs{
		dial:      reg.Counter("faults_dial_fired_total"),
		handshake: reg.Counter("faults_handshake_fired_total"),
		reset:     reg.Counter("faults_reset_fired_total"),
		truncate:  reg.Counter("faults_truncate_fired_total"),
		depart:    reg.Counter("faults_depart_fired_total"),
		loss:      reg.Counter("faults_loss_fired_total"),
	}
}

// fired records one fire decision at site.
func (p *Plane) fired(site string) {
	switch site {
	case siteDial:
		p.om.dial.Inc()
	case siteHandshake:
		p.om.handshake.Inc()
	case siteReset:
		p.om.reset.Inc()
	case siteTruncate:
		p.om.truncate.Inc()
	case siteDepart:
		p.om.depart.Inc()
	case siteLoss:
		p.om.loss.Inc()
	}
}

type counterKey struct {
	site string
	key  uint64
}

// New returns a Plane for cfg. New(Config{}) is a valid, inert plane.
func New(cfg Config) *Plane {
	return &Plane{cfg: cfg, counters: make(map[counterKey]uint64)}
}

// Config returns the plane's configuration (zero Config for a nil plane).
func (p *Plane) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// SetLiveness installs a liveness mask: peers whose entry is false are
// dead — dials to them time out and flooded descriptors addressed to them
// are dropped. The mask is indexed by peer ID; a nil mask (the default)
// marks every peer alive. The mask is typically produced by
// internal/churn's OnlineMask so crawler and churn experiments share one
// session model.
func (p *Plane) SetLiveness(mask []bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.alive = mask
	p.mu.Unlock()
}

// Alive reports whether peer id is alive under the current liveness mask.
func (p *Plane) Alive(id int) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.alive == nil || id < 0 || id >= len(p.alive) {
		return true
	}
	return p.alive[id]
}

// LivenessSnapshot returns the current liveness mask, nil when every peer
// is alive. The slice is shared with the plane and must be treated as
// read-only; flood contexts capture it once per flood so the per-envelope
// liveness test costs an index instead of a mutex acquisition.
func (p *Plane) LivenessSnapshot() []bool {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// next returns the per-(site, key) call counter, post-incremented.
func (p *Plane) next(site string, key uint64) uint64 {
	ck := counterKey{site, key}
	p.mu.Lock()
	n := p.counters[ck]
	p.counters[ck] = n + 1
	p.mu.Unlock()
	return n
}

// stream derives the decision stream for the nth event at (site, key).
func (p *Plane) stream(site string, key, n uint64) *rng.Source {
	// Mix key and call index into the seed with distinct odd constants so
	// nearby keys and consecutive calls land on unrelated streams.
	derived := p.cfg.Seed ^ (key * 0x9e3779b97f4a7c15) ^ (n * 0xbf58476d1ce4e5b9)
	return rng.NewNamed(derived, site)
}

// roll decides one fault event. Zero probability returns false without
// touching any state, keeping the plane inert when disabled.
func (p *Plane) roll(site string, key uint64, prob float64) (*rng.Source, bool) {
	if p == nil || prob <= 0 {
		return nil, false
	}
	r := p.stream(site, key, p.next(site, key))
	if !r.Bool(prob) {
		return nil, false
	}
	p.fired(site)
	return r, true
}

// DialTimeout reports whether this dial attempt to peer id times out.
// Successive attempts to the same peer re-roll, so dial faults are
// transient and a retrying client can get through.
func (p *Plane) DialTimeout(id int) bool {
	_, fire := p.roll(siteDial, uint64(id), p.Config().DialTimeout)
	return fire
}

// HandshakeStall reports whether the servent stalls this handshake.
func (p *Plane) HandshakeStall(id int) bool {
	_, fire := p.roll(siteHandshake, uint64(id), p.Config().HandshakeStall)
	return fire
}

// connBudgetMin/Max bound how many bytes a faulted connection delivers
// before dying. The minimum clears the ~200-byte handshake so stream
// faults hit the message phase, not the handshake (which has its own
// fault class).
const (
	connBudgetMin = 512
	connBudgetMax = 16384
)

// ConnReset decides whether this connection is reset mid-stream; when it
// fires, budget is how many bytes the client may read before the reset.
func (p *Plane) ConnReset(id int) (budget int, fire bool) {
	r, fire := p.roll(siteReset, uint64(id), p.Config().ConnReset)
	if !fire {
		return 0, false
	}
	return connBudgetMin + r.Intn(connBudgetMax-connBudgetMin), true
}

// TruncateWrite decides whether the servent's response stream is cut
// mid-descriptor; when it fires, budget is the byte position of the cut.
func (p *Plane) TruncateWrite(id int) (budget int, fire bool) {
	r, fire := p.roll(siteTruncate, uint64(id), p.Config().TruncateWrite)
	if !fire {
		return 0, false
	}
	return connBudgetMin + r.Intn(connBudgetMax-connBudgetMin), true
}

// PeerDepart reports whether peer id departs before serving its next
// descriptor or result batch.
func (p *Plane) PeerDepart(id int) bool {
	_, fire := p.roll(siteDepart, uint64(id), p.Config().PeerDepart)
	return fire
}

// MessageLoss reports whether one flooded descriptor addressed to peer id
// is lost in transit. Each transmission rolls independently, so a copy
// arriving over another overlay edge may still get through.
//
// The decision consumes the plane-global (site, to) counter, so it is
// deterministic only when every loss roll in the process happens in one
// fixed order. Concurrent floods must use MessageLossAt instead.
func (p *Plane) MessageLoss(to int) bool {
	_, fire := p.roll(siteLoss, uint64(to), p.Config().MessageLoss)
	return fire
}

// MessageLossAt decides whether the nth descriptor transmitted to peer
// `to` within the flood identified by salt is lost. Unlike MessageLoss,
// the decision is a pure function of (seed, salt, to, n): it reads no
// plane state beyond the configuration, so floods running on different
// workers — or the same floods re-run in a different order — observe
// identical loss schedules. Callers derive salt from per-trial randomness
// (the flood GUID) and count n per destination within the flood.
func (p *Plane) MessageLossAt(salt uint64, to int, n uint64) bool {
	if p == nil {
		return false
	}
	prob := p.cfg.MessageLoss
	if prob <= 0 {
		return false
	}
	derived := p.cfg.Seed ^ (salt * 0x94d049bb133111eb) ^
		(uint64(to) * 0x9e3779b97f4a7c15) ^ (n * 0xbf58476d1ce4e5b9)
	if rng.NewNamed(derived, siteLoss).Bool(prob) {
		p.om.loss.Inc()
		return true
	}
	return false
}
