package faults

import "testing"

func TestBurstValidate(t *testing.T) {
	good := Burst{Time: 100, Frac: 0.3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
	bad := []Burst{
		{Time: 0, Frac: 0.3},
		{Time: -5, Frac: 0.3},
		{Time: 100, Frac: -0.1},
		{Time: 100, Frac: 1.1},
		{Time: 100, Frac: 0.3, Polite: 2},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad burst %d passed Validate: %+v", i, b)
		}
	}
}

func TestBurstVictimsDeterministicAndSized(t *testing.T) {
	b := Burst{Time: 3600, Frac: 0.3}
	const n = 200
	v1 := b.Victims(42, n)
	v2 := b.Victims(42, n)
	if len(v1) != 60 {
		t.Fatalf("30%% of %d should be 60 victims, got %d", n, len(v1))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("victim selection not deterministic at index %d: %d vs %d", i, v1[i], v2[i])
		}
		if v1[i] < 0 || v1[i] >= n {
			t.Fatalf("victim %d out of range", v1[i])
		}
		if i > 0 && v1[i] <= v1[i-1] {
			t.Fatalf("victims not strictly ascending: %v", v1[:i+1])
		}
	}
	// A different seed (or burst time) picks a different set.
	if same(v1, b.Victims(43, n)) {
		t.Fatal("different seeds picked identical victim sets")
	}
	if same(v1, Burst{Time: 7200, Frac: 0.3}.Victims(42, n)) {
		t.Fatal("different burst times picked identical victim sets")
	}
}

func TestBurstVictimsEdgeCases(t *testing.T) {
	if v := (Burst{Time: 1, Frac: 0}).Victims(42, 100); v != nil {
		t.Fatalf("zero-frac burst produced victims: %v", v)
	}
	if v := (Burst{Time: 1, Frac: 1}).Victims(42, 10); len(v) != 10 {
		t.Fatalf("full burst should take everyone, got %d", len(v))
	}
	if v := (Burst{Time: 1, Frac: 0.5}).Victims(42, 0); v != nil {
		t.Fatalf("empty population produced victims: %v", v)
	}
}

func TestValidateBursts(t *testing.T) {
	ok := []Burst{{Time: 10, Frac: 0.1}, {Time: 20, Frac: 0.2}}
	if err := ValidateBursts(ok); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := ValidateBursts([]Burst{{Time: 20, Frac: 0.1}, {Time: 20, Frac: 0.2}}); err == nil {
		t.Fatal("equal-time bursts accepted")
	}
	if err := ValidateBursts([]Burst{{Time: 20, Frac: 0.1}, {Time: 10, Frac: 0.2}}); err == nil {
		t.Fatal("out-of-order bursts accepted")
	}
	if err := ValidateBursts([]Burst{{Time: 0, Frac: 0.1}}); err == nil {
		t.Fatal("invalid member burst accepted")
	}
}

func same(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
