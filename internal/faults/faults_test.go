package faults

import (
	"sync"
	"testing"
)

func TestZeroConfigIsInert(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
	for _, p := range []*Plane{nil, New(Config{Seed: 99})} {
		for i := 0; i < 200; i++ {
			if p.DialTimeout(i) || p.HandshakeStall(i) || p.PeerDepart(i) || p.MessageLoss(i) {
				t.Fatal("inert plane injected a fault")
			}
			if _, fire := p.ConnReset(i); fire {
				t.Fatal("inert plane fired a reset")
			}
			if _, fire := p.TruncateWrite(i); fire {
				t.Fatal("inert plane fired a truncation")
			}
			if !p.Alive(i) {
				t.Fatal("inert plane killed a peer")
			}
		}
	}
}

// schedule records the outcome of a fixed probe sequence against a plane.
func schedule(p *Plane) []bool {
	var out []bool
	for peer := 0; peer < 50; peer++ {
		for call := 0; call < 4; call++ {
			out = append(out, p.DialTimeout(peer))
			out = append(out, p.HandshakeStall(peer))
			out = append(out, p.MessageLoss(peer))
			out = append(out, p.PeerDepart(peer))
			b, f := p.ConnReset(peer)
			out = append(out, f, b > 0 == f)
			b, f = p.TruncateWrite(peer)
			out = append(out, f, b > 0 == f)
		}
	}
	return out
}

func TestIdenticalSeedsIdenticalSchedules(t *testing.T) {
	cfg := Config{
		Seed: 7, DialTimeout: 0.3, HandshakeStall: 0.2, ConnReset: 0.2,
		TruncateWrite: 0.2, PeerDepart: 0.1, MessageLoss: 0.25,
	}
	a := schedule(New(cfg))
	b := schedule(New(cfg))
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at probe %d", i)
		}
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no fault fired across 50 peers at 20-30% rates")
	}

	cfg.Seed = 8
	c := schedule(New(cfg))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestSchedulePerKeyIndependentOfInterleaving(t *testing.T) {
	// The nth decision for a given (site, key) must not depend on calls
	// made for other keys in between.
	cfg := Config{Seed: 11, DialTimeout: 0.5}
	a := New(cfg)
	var seqA []bool
	for call := 0; call < 10; call++ {
		seqA = append(seqA, a.DialTimeout(3))
	}
	b := New(cfg)
	var seqB []bool
	for call := 0; call < 10; call++ {
		for other := 0; other < 5; other++ {
			b.DialTimeout(other * 100)
		}
		seqB = append(seqB, b.DialTimeout(3))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("interleaved calls perturbed the schedule at step %d", i)
		}
	}
}

func TestMessageLossAtIsScheduleInvariant(t *testing.T) {
	p := New(Config{Seed: 11, MessageLoss: 0.3})
	// The decision must be a pure function of (salt, to, n): interleaving
	// other rolls, or consuming the plane-global counters, must not change
	// it.
	want := make(map[[3]uint64]bool)
	for salt := uint64(0); salt < 4; salt++ {
		for to := 0; to < 20; to++ {
			for n := uint64(0); n < 3; n++ {
				want[[3]uint64{salt, uint64(to), n}] = p.MessageLossAt(salt, to, n)
			}
		}
	}
	for i := 0; i < 100; i++ {
		p.MessageLoss(i % 7) // churn the global counters
	}
	for n := uint64(3); n > 0; n-- { // reversed order
		for to := 19; to >= 0; to-- {
			for salt := uint64(3); ; salt-- {
				if got := p.MessageLossAt(salt, to, n-1); got != want[[3]uint64{salt, uint64(to), n - 1}] {
					t.Fatalf("MessageLossAt(%d,%d,%d) changed across orderings", salt, to, n-1)
				}
				if salt == 0 {
					break
				}
			}
		}
	}
	// Inert planes draw nothing.
	var nilPlane *Plane
	if nilPlane.MessageLossAt(1, 2, 3) || New(Config{Seed: 11}).MessageLossAt(1, 2, 3) {
		t.Error("inert plane lost a message")
	}
	// Distinct salts must decorrelate: two floods over the same edges see
	// different schedules.
	same := 0
	const probes = 400
	for i := 0; i < probes; i++ {
		if p.MessageLossAt(1, i, 0) == p.MessageLossAt(2, i, 0) {
			same++
		}
	}
	if same == probes {
		t.Error("salts 1 and 2 produced identical schedules")
	}
}

func TestLivenessSnapshotSharesMask(t *testing.T) {
	p := New(Config{Seed: 3})
	if p.LivenessSnapshot() != nil {
		t.Error("fresh plane has a mask")
	}
	var nilPlane *Plane
	if nilPlane.LivenessSnapshot() != nil {
		t.Error("nil plane has a mask")
	}
	mask := []bool{true, false, true}
	p.SetLiveness(mask)
	snap := p.LivenessSnapshot()
	if len(snap) != 3 || snap[1] {
		t.Errorf("snapshot %v does not reflect the mask", snap)
	}
}

func TestDialTimeoutIsTransient(t *testing.T) {
	// At a 50% dial-fault rate, repeated attempts to the same peer must
	// eventually get through (the schedule re-rolls per attempt).
	p := New(Config{Seed: 3, DialTimeout: 0.5})
	for peer := 0; peer < 20; peer++ {
		ok := false
		for attempt := 0; attempt < 40; attempt++ {
			if !p.DialTimeout(peer) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("peer %d never dialable in 40 attempts at 50%% fault rate", peer)
		}
	}
}

func TestLivenessMask(t *testing.T) {
	p := New(Config{Seed: 1})
	mask := []bool{true, false, true}
	p.SetLiveness(mask)
	if !p.Alive(0) || p.Alive(1) || !p.Alive(2) {
		t.Error("mask not honored")
	}
	// Out-of-range IDs are treated as alive.
	if !p.Alive(3) || !p.Alive(-1) {
		t.Error("out-of-range IDs should be alive")
	}
	p.SetLiveness(nil)
	if !p.Alive(1) {
		t.Error("nil mask should mark everyone alive")
	}
}

func TestConcurrentUse(t *testing.T) {
	// The plane is consulted from servent goroutines; hammer it from
	// several goroutines so the race detector can check the counters.
	p := New(Config{Seed: 5, DialTimeout: 0.3, PeerDepart: 0.3, MessageLoss: 0.3})
	p.SetLiveness(make([]bool, 64))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.DialTimeout(i % 7)
				p.MessageLoss(i % 13)
				p.PeerDepart(g)
				p.Alive(i % 64)
			}
		}(g)
	}
	wg.Wait()
}
