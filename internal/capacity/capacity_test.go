package capacity

import (
	"sync"
	"testing"
)

func mustPlane(t *testing.T, cfg Config, n int) *Plane {
	t.Helper()
	p, err := New(cfg, n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Unbounded, DropTail, RED, TTLAware} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"disabled", func(c *Config) { c.ServiceCostMs = 0 }, true},
		{"negative service cost", func(c *Config) { c.ServiceCostMs = -1 }, false},
		{"zero depth drop-tail", func(c *Config) { c.QueueDepth = 0 }, false},
		{"zero depth unbounded", func(c *Config) { c.QueueDepth = 0; c.Policy = Unbounded }, true},
		{"negative commit every", func(c *Config) { c.CommitEvery = -1 }, false},
		{"breaker zero window", func(c *Config) { c.Breakers = true; c.BreakerWindow = 0 }, false},
		{"breaker trip over window", func(c *Config) { c.Breakers = true; c.BreakerTrip = 17 }, false},
		{"breaker zero cooldown", func(c *Config) { c.Breakers = true; c.BreakerCooldownS = 0 }, false},
		{"breaker ok", func(c *Config) { c.Breakers = true }, true},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(1)
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

func TestNilAndDisabledPlanesAreInert(t *testing.T) {
	var nilP *Plane
	disabled := mustPlane(t, Config{}, 4)
	for _, p := range []*Plane{nilP, disabled} {
		if p.Enabled() {
			t.Fatal("inert plane reports enabled")
		}
		if !p.Admit(1, 0, 0, 1, 3) || !p.AdmitPing(1, 0) {
			t.Fatal("inert plane shed a message")
		}
		if p.Blocked(0) {
			t.Fatal("inert plane blocked a peer")
		}
		p.Advance(100)
		p.Commit(100)
		p.AddSuppressed(0)
		if p.QueueDelayS(0) != 0 || p.Depth(0) != 0 {
			t.Fatal("inert plane has backlog")
		}
		if p.Stats() != (Stats{}) {
			t.Fatal("inert plane accumulated stats")
		}
	}
}

func TestDropTailShedsAtDepth(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.QueueDepth = 4
	p := mustPlane(t, cfg, 2)
	// Fill peer 0 to exactly its depth in one committed phase.
	for i := 0; i < 4; i++ {
		if !p.Admit(99, 0, uint64(i), 3, 3) {
			t.Fatalf("admit %d rejected below committed depth", i)
		}
	}
	p.Commit(0)
	if d := p.Depth(0); d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
	if p.Admit(100, 0, 0, 3, 3) {
		t.Fatal("drop-tail admitted at full depth")
	}
	if !p.Admit(100, 1, 0, 3, 3) {
		t.Fatal("drop-tail shed an empty peer")
	}
	p.Commit(0)
	st := p.Stats()
	if st.Enqueued != 5 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 5 enqueued / 1 shed", st)
	}
}

func TestREDRampsDeterministically(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.QueueDepth = 8
	cfg.Policy = RED
	p := mustPlane(t, cfg, 1)
	// Below half occupancy RED always admits.
	for i := 0; i < 3; i++ {
		if !p.Admit(1, 0, uint64(i), 3, 3) {
			t.Fatal("RED shed below min threshold")
		}
	}
	p.Commit(0)
	// At full occupancy RED always sheds.
	for i := 0; i < 5; i++ {
		p.Admit(2, 0, uint64(i), 3, 3)
	}
	p.Commit(0)
	if p.Depth(0) < 8 && p.Admit(3, 0, 0, 3, 3) {
		// fill the rest deterministically
		p.Commit(0)
	}
	for p.Depth(0) < 8 {
		p.Admit(4, 0, uint64(p.Depth(0)), 3, 3)
		p.Commit(0)
	}
	if p.Admit(5, 0, 0, 3, 3) {
		t.Fatal("RED admitted at full occupancy")
	}
	// Decisions in the ramp are pure functions of (seed, salt, to, n).
	q := mustPlane(t, cfg, 1)
	for i := 0; i < 5; i++ {
		q.Admit(9, 0, uint64(i), 3, 3)
	}
	q.Commit(0)
	r := mustPlane(t, cfg, 1)
	for i := 0; i < 5; i++ {
		r.Admit(9, 0, uint64(i), 3, 3)
	}
	r.Commit(0)
	if q.Stats() != r.Stats() {
		t.Fatalf("RED not deterministic: %+v vs %+v", q.Stats(), r.Stats())
	}
}

func TestTTLAwareFavorsFreshMessages(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.QueueDepth = 9
	cfg.Policy = TTLAware
	p := mustPlane(t, cfg, 1)
	for i := 0; i < 6; i++ {
		p.Admit(1, 0, uint64(i), 3, 3)
	}
	p.Commit(0)
	// Depth 6: allowance for ttl=1 is 9*1/3=3 -> shed; ttl=3 is 9 -> admit.
	if p.Admit(2, 0, 0, 1, 3) {
		t.Fatal("TTL-aware admitted a far (ttl=1) message over its allowance")
	}
	if !p.Admit(2, 0, 1, 3, 3) {
		t.Fatal("TTL-aware shed a fresh (full-TTL) message below depth")
	}
}

func TestAdvanceDrainsByServiceCost(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.QueueDepth = 16
	cfg.ServiceCostMs = 10000 // one message per 10 s
	p := mustPlane(t, cfg, 1)
	for i := 0; i < 10; i++ {
		p.Admit(1, 0, uint64(i), 3, 3)
	}
	p.Commit(0)
	if d := p.QueueDelayS(0); d != 100 {
		t.Fatalf("QueueDelayS = %d, want 100", d)
	}
	p.Advance(25) // 25 s -> 2 drained, 5 s carried
	if d := p.Depth(0); d != 8 {
		t.Fatalf("depth after 25s = %d, want 8", d)
	}
	p.Advance(30) // +5 s -> carry completes a third message
	if d := p.Depth(0); d != 7 {
		t.Fatalf("depth after 30s = %d, want 7", d)
	}
	p.Advance(10_000)
	if d := p.Depth(0); d != 0 {
		t.Fatalf("depth after long drain = %d, want 0", d)
	}
	if st := p.Stats(); st.Served != 10 {
		t.Fatalf("served = %d, want 10", st.Served)
	}
}

// breakerCfg returns a small 3-of-4 breaker plane for state-machine tests.
func breakerCfg() Config {
	cfg := DefaultConfig(7)
	cfg.QueueDepth = 1
	cfg.Breakers = true
	cfg.BreakerWindow = 4
	cfg.BreakerTrip = 3
	cfg.BreakerCooldownS = 60
	return cfg
}

// reject feeds one committed rejected send to peer 0 (queue full -> shed).
func reject(p *Plane, now int64, salt uint64) {
	p.Admit(salt, 0, 0, 3, 3)
	p.Commit(now)
}

func TestBreakerOpensAtExactlyNOfM(t *testing.T) {
	p := mustPlane(t, breakerCfg(), 1)
	// Fill the single queue slot so every further send rejects.
	p.Admit(0, 0, 0, 3, 3)
	p.Commit(0)
	reject(p, 0, 1)
	reject(p, 0, 2)
	if p.Blocked(0) {
		t.Fatal("breaker open after 2 of 3 rejects")
	}
	reject(p, 0, 3)
	if !p.Blocked(0) {
		t.Fatal("breaker closed after N=3 rejects in window")
	}
	if st := p.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
}

func TestBreakerWindowForgetsOldRejects(t *testing.T) {
	cfg := breakerCfg()
	cfg.QueueDepth = 8
	p := mustPlane(t, cfg, 1)
	// Two rejects (force by filling first), then accepts push them out of
	// the M=4 ring before a third reject arrives.
	for i := 0; i < 8; i++ {
		p.Admit(0, 0, uint64(i), 3, 3)
	}
	p.Commit(0)
	reject(p, 0, 1)
	reject(p, 0, 2)
	p.Advance(80_000) // drain fully
	p.Admit(3, 0, 0, 3, 3)
	p.Commit(80_000)
	p.Admit(4, 0, 0, 3, 3)
	p.Commit(80_000)
	p.Admit(5, 0, 0, 3, 3)
	p.Commit(80_000)
	// Ring now holds [rej rej acc acc] -> [acc acc acc ...]; one more
	// reject is 1-of-4, not 3-of-4.
	for i := 0; i < 8; i++ {
		p.Admit(6, 0, uint64(100+i), 3, 3)
	}
	p.Commit(80_000)
	reject(p, 80_000, 7)
	if p.Blocked(0) {
		t.Fatal("breaker opened on stale rejects outside the window")
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	p := mustPlane(t, breakerCfg(), 1)
	p.Admit(0, 0, 0, 3, 3)
	p.Commit(0)
	reject(p, 0, 1)
	reject(p, 0, 2)
	reject(p, 0, 3)
	if !p.Blocked(0) {
		t.Fatal("breaker should be open")
	}
	// Before the cooldown the breaker stays open.
	p.Advance(59)
	if !p.Blocked(0) {
		t.Fatal("breaker half-opened before cooldown")
	}
	// Cooldown elapses -> half-open, probes flow again. The long drain also
	// empties the queue, so the probe is accepted and the breaker closes.
	p.Advance(61)
	if p.Blocked(0) {
		t.Fatal("breaker still blocked after cooldown")
	}
	p.Admit(4, 0, 0, 3, 3)
	p.Commit(61)
	if p.Blocked(0) {
		t.Fatal("breaker re-opened on an accepted probe")
	}
	if st := p.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
}

func TestBreakerHalfOpenRejectReopens(t *testing.T) {
	// Service slower than the cooldown, so the queue is still full when the
	// breaker half-opens and the probe sheds.
	cfg := breakerCfg()
	cfg.ServiceCostMs = 1_000_000
	p := mustPlane(t, cfg, 1)
	p.Admit(0, 0, 0, 3, 3)
	p.Commit(0)
	reject(p, 0, 1)
	reject(p, 0, 2)
	reject(p, 0, 3)
	if !p.Blocked(0) {
		t.Fatal("breaker should be open")
	}
	p.Advance(61) // cooldown elapsed -> half-open; queue still full
	if p.Blocked(0) {
		t.Fatal("breaker still blocked after cooldown")
	}
	reject(p, 61, 4)
	if !p.Blocked(0) {
		t.Fatal("half-open probe reject did not re-open the breaker")
	}
	if st := p.Stats(); st.BreakerOpens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2", st.BreakerOpens)
	}
}

func TestSuppressedTally(t *testing.T) {
	p := mustPlane(t, breakerCfg(), 1)
	p.AddSuppressed(5)
	p.AddSuppressed(2)
	if st := p.Stats(); st.BreakerSuppressed != 7 {
		t.Fatalf("BreakerSuppressed = %d, want 7", st.BreakerSuppressed)
	}
}

// TestConcurrentAdmitIsOrderInvariant pins the worker-invariance claim at
// the plane level: the same admission set split across goroutines in any
// interleaving folds to identical committed state.
func TestConcurrentAdmitIsOrderInvariant(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.QueueDepth = 8
	cfg.Policy = RED
	run := func(workers int) Stats {
		p := mustPlane(t, cfg, 16)
		var wg sync.WaitGroup
		per := 64 / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w * per; i < (w+1)*per; i++ {
					p.Admit(uint64(i/4), i%16, uint64(i), 2, 3)
				}
			}(w)
		}
		wg.Wait()
		p.Commit(0)
		return p.Stats()
	}
	if a, b := run(1), run(8); a != b {
		t.Fatalf("stats differ across workers: %+v vs %+v", a, b)
	}
}
