// Package capacity is the deterministic overload plane: every peer gets a
// bounded ingress queue with a configurable per-message service cost, a
// pluggable shedding policy (drop-tail, deterministic random-early-drop,
// TTL-aware), and a per-peer circuit breaker that stops neighbors from
// forwarding to a queue that keeps rejecting them. The paper's message-cost
// numbers silently assume peers absorb unlimited traffic instantly; this
// plane makes that assumption a measurable arm instead of a constant.
//
// Determinism contract. Queue state is mutated only from single-threaded
// event-handler code (Advance, Commit); the concurrent flood fan-out reads
// a frozen snapshot of committed queue depths and breaker states, makes
// per-message admission decisions that are pure functions of (seed, flood
// salt, destination, attempt index), and accumulates outcomes into
// commutative atomic tallies. Commit then folds the tallies back into the
// committed state in canonical (peer-id) order. Results are therefore
// byte-identical at any worker count. Admission within one phase is
// optimistic — concurrent floods all see the phase-start depth, so a queue
// can transiently exceed QueueDepth by at most the number of messages one
// phase admits; callers bound that overshoot by committing every
// CommitEvery queries (see events.Scenario).
//
// Like the fault plane, capacity is inert by default: a nil *Plane, or a
// Config with zero ServiceCostMs, admits everything, draws nothing and
// touches no state, so disabled runs are byte-identical to a build without
// the plane.
package capacity

import (
	"fmt"
	"sync/atomic"

	"querycentric/internal/obs"
	"querycentric/internal/rng"
)

// Policy selects how a full (or filling) ingress queue sheds messages.
type Policy uint8

// Shedding policies. Unbounded tracks backlog but never sheds — the arm
// that shows what infinite queues cost. DropTail rejects only when the
// committed depth has reached QueueDepth. RED (random early drop) starts
// shedding probabilistically at half occupancy, reaching certainty at full
// occupancy, on a per-(peer,message) derived stream. TTLAware scales the
// far-copy admission threshold with the message's remaining TTL and gives
// fresh (full-TTL) messages an express lane — their own backlog counter,
// served first — so far-from-origin copies are shed first and fresh
// queries keep reaching their immediate neighborhood even at saturation.
// The two lanes mean a TTL-aware queue's total occupancy is bounded by
// 2x QueueDepth (plus phase overshoot) rather than QueueDepth.
const (
	Unbounded Policy = iota
	DropTail
	RED
	TTLAware
)

// String names the policy with its CLI token.
func (p Policy) String() string {
	switch p {
	case Unbounded:
		return "unbounded"
	case DropTail:
		return "drop-tail"
	case RED:
		return "red"
	case TTLAware:
		return "ttl"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a CLI policy token.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "unbounded":
		return Unbounded, nil
	case "drop-tail":
		return DropTail, nil
	case "red":
		return RED, nil
	case "ttl":
		return TTLAware, nil
	}
	return 0, fmt.Errorf("capacity: unknown shed policy %q (unbounded|drop-tail|red|ttl)", s)
}

// metricToken is the policy's metric-name suffix.
func (p Policy) metricToken() string {
	switch p {
	case DropTail:
		return "drop_tail"
	case RED:
		return "red"
	case TTLAware:
		return "ttl"
	default:
		return "unbounded"
	}
}

// Config shapes the overload plane. The zero value disables everything.
type Config struct {
	// Seed roots the plane's decision streams (the RED drop rolls). Two
	// planes with equal Config shed identically.
	Seed uint64
	// QueueDepth is the per-peer ingress-queue bound in messages. Policies
	// other than Unbounded require it positive.
	QueueDepth int
	// ServiceCostMs is the simulated service time per queued message in
	// milliseconds; a peer drains one message every ServiceCostMs of sim
	// time. Zero disables the whole plane.
	ServiceCostMs int
	// Policy selects the shedding discipline.
	Policy Policy
	// CommitEvery bounds optimistic admission: callers fold outcomes into
	// committed state after this many concurrent queries, so a queue can
	// overshoot QueueDepth by at most CommitEvery. 0 commits once per batch.
	CommitEvery int
	// Breakers enables the per-peer circuit breaker.
	Breakers bool
	// BreakerWindow (M) and BreakerTrip (N) define the trip rule: a
	// breaker opens when the peer's queue rejected at least N of the last M
	// full-TTL (fresh) sends — far-ring shedding is not breaker evidence.
	BreakerWindow int
	BreakerTrip   int
	// BreakerCooldownS is how long an open breaker suppresses sends before
	// half-opening to let probes through, in simulated seconds.
	BreakerCooldownS int64
}

// Enabled reports whether the plane does anything at all.
func (c Config) Enabled() bool { return c.ServiceCostMs > 0 }

// DefaultConfig returns the standard bounded-peer model: a 16-message
// queue served at one message per 10 simulated seconds, drop-tail
// shedding, optimistic admission folded every 8 queries, and (when
// enabled) a last-resort 15-of-16 breaker with a one-minute cooldown —
// it opens only when a neighbor rejects essentially all fresh traffic,
// and probes again quickly so blackouts stay short.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		QueueDepth:       16,
		ServiceCostMs:    10000,
		Policy:           DropTail,
		CommitEvery:      8,
		BreakerWindow:    16,
		BreakerTrip:      15,
		BreakerCooldownS: 60,
	}
}

// Validate rejects configurations that cannot run. A disabled config is
// always valid.
func (c Config) Validate() error {
	if !c.Enabled() {
		if c.ServiceCostMs < 0 {
			return fmt.Errorf("capacity: ServiceCostMs must be >= 0, got %d", c.ServiceCostMs)
		}
		return nil
	}
	switch {
	case c.Policy > TTLAware:
		return fmt.Errorf("capacity: unknown policy %d", c.Policy)
	case c.Policy != Unbounded && c.QueueDepth < 1:
		return fmt.Errorf("capacity: QueueDepth must be positive for policy %s, got %d", c.Policy, c.QueueDepth)
	case c.QueueDepth < 0:
		return fmt.Errorf("capacity: QueueDepth must be >= 0, got %d", c.QueueDepth)
	case c.CommitEvery < 0:
		return fmt.Errorf("capacity: CommitEvery must be >= 0, got %d", c.CommitEvery)
	}
	if c.Breakers {
		switch {
		case c.BreakerWindow < 1:
			return fmt.Errorf("capacity: BreakerWindow must be positive, got %d", c.BreakerWindow)
		case c.BreakerTrip < 1 || c.BreakerTrip > c.BreakerWindow:
			return fmt.Errorf("capacity: BreakerTrip must be in [1,%d], got %d", c.BreakerWindow, c.BreakerTrip)
		case c.BreakerCooldownS < 1:
			return fmt.Errorf("capacity: BreakerCooldownS must be positive, got %d", c.BreakerCooldownS)
		}
	}
	return nil
}

// siteRED names the RED decision stream.
const siteRED = "capacity/red"

// Breaker states.
const (
	brClosed uint8 = iota
	brOpen
	brHalfOpen
)

// breaker is one peer's circuit-breaker state machine: a ring of the last
// M send outcomes while closed, an open phase that suppresses sends until
// the cooldown elapses, and a half-open phase where the next committed
// phase's probes decide between closing and re-opening.
type breaker struct {
	window   []bool // ring of the last BreakerWindow outcomes; true = reject
	idx      int
	count    int
	rejects  int
	state    uint8
	openedAt int64
}

// Stats are the plane's committed tallies. All fields are folded
// single-threaded at Commit (suppressions are folded from an atomic), so a
// Stats snapshot is schedule-invariant.
type Stats struct {
	// Enqueued and Shed count admission outcomes; Served counts messages
	// drained by elapsed service time.
	Enqueued int64 `json:"enqueued"`
	Shed     int64 `json:"shed"`
	Served   int64 `json:"served"`
	// BreakerOpens counts closed/half-open -> open transitions;
	// BreakerSuppressed counts sends never transmitted because the
	// destination's breaker was open.
	BreakerOpens      int64 `json:"breaker_opens"`
	BreakerSuppressed int64 `json:"breaker_suppressed"`
	// MaxDepth is the largest committed queue depth observed.
	MaxDepth int64 `json:"max_depth"`
}

// planeObs holds the nil-safe metric handles; the zero value records
// nothing.
type planeObs struct {
	enqueued    *obs.Counter
	shed        *obs.Counter
	breakerOpen *obs.Counter
	suppressed  *obs.Counter
	depth       *obs.Histogram
}

// Plane is one overload engine over a fixed peer population. Admit,
// Blocked, QueueDelayS and AddSuppressed are safe for concurrent use
// against frozen committed state; Advance and Commit must run
// single-threaded between concurrent phases (the event engine's handler
// goroutine). All methods are nil-safe.
type Plane struct {
	cfg Config

	// depth is the committed per-peer backlog in messages, mutated only by
	// Advance (drain) and Commit (fold). Concurrent phases read it frozen.
	depth []int64
	// freshDepth (TTL-aware policy only) is the committed backlog of the
	// fresh express lane: full-TTL messages are admitted against this
	// counter alone and served before the far backlog, so far-from-origin
	// junk seized optimistically by one sub-batch cannot crowd fresh
	// queries out of the next. Invariant: freshDepth[i] <= depth[i].
	freshDepth []int64
	// attempts and rejects accumulate the current phase's admission
	// outcomes with atomic adds; sums are commutative, so they are
	// worker-invariant. freshAtt/freshRej count only full-TTL attempts —
	// the breaker's evidence (see feedBreaker).
	attempts []int64
	rejects  []int64
	freshAtt []int64
	freshRej []int64
	// blocked is the breaker suppression mask read by forwarders; written
	// only at Commit/Advance.
	blocked []bool

	breakers   []breaker
	openCount  int
	suppressed atomic.Int64

	lastAdvance int64
	carryMs     int64

	stats Stats
	om    planeObs
}

// New builds a plane for a population of n peers. A disabled config yields
// a valid, inert plane.
func New(cfg Config, n int) (*Plane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("capacity: population must be >= 0, got %d", n)
	}
	p := &Plane{cfg: cfg}
	if !cfg.Enabled() {
		return p, nil
	}
	p.depth = make([]int64, n)
	p.attempts = make([]int64, n)
	p.rejects = make([]int64, n)
	p.blocked = make([]bool, n)
	if cfg.Breakers || cfg.Policy == TTLAware {
		p.freshAtt = make([]int64, n)
		p.freshRej = make([]int64, n)
	}
	if cfg.Policy == TTLAware {
		p.freshDepth = make([]int64, n)
	}
	if cfg.Breakers {
		p.breakers = make([]breaker, n)
		for i := range p.breakers {
			p.breakers[i].window = make([]bool, cfg.BreakerWindow)
		}
	}
	return p, nil
}

// Enabled reports whether this plane sheds, queues or breaks anything.
func (p *Plane) Enabled() bool { return p != nil && p.cfg.Enabled() }

// Config returns the plane's configuration (zero Config for a nil plane).
func (p *Plane) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// Instrument attaches capacity metrics to reg; a nil reg detaches. Attach
// before concurrent phases run — the handles are written without locking.
func (p *Plane) Instrument(reg *obs.Registry) {
	if p == nil {
		return
	}
	if reg == nil {
		p.om = planeObs{}
		return
	}
	p.om = planeObs{
		enqueued:    reg.Counter("capacity_enqueued_total"),
		shed:        reg.Counter("capacity_shed_total_" + p.cfg.Policy.metricToken()),
		breakerOpen: reg.Counter("capacity_breaker_open_total"),
		suppressed:  reg.Counter("capacity_breaker_suppressed_total"),
		depth:       reg.Histogram("capacity_queue_depth", []int64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

// Admit decides whether the nth delivery attempt to peer `to` within the
// flood identified by salt enters the ingress queue, with the message's
// remaining TTL and the flood's initial TTL driving the TTL-aware policy.
// The decision is a pure function of (config, committed depth, salt, to,
// n); the outcome lands in atomic phase tallies. Nil or disabled planes
// admit everything for free.
func (p *Plane) Admit(salt uint64, to int, n uint64, ttl, floodTTL int) bool {
	if !p.Enabled() {
		return true
	}
	atomic.AddInt64(&p.attempts[to], 1)
	fresh := p.freshAtt != nil && ttl >= floodTTL
	if fresh {
		atomic.AddInt64(&p.freshAtt[to], 1)
	}
	if p.admits(salt, to, n, ttl, floodTTL) {
		p.om.enqueued.Inc()
		return true
	}
	atomic.AddInt64(&p.rejects[to], 1)
	if fresh {
		atomic.AddInt64(&p.freshRej[to], 1)
	}
	p.om.shed.Inc()
	return false
}

// AdmitPing is Admit for a maintenance keepalive: a TTL-1 control message
// treated as fresh (full queue allowance), salted by the maintainer's
// per-round ping salt.
func (p *Plane) AdmitPing(salt uint64, to int) bool {
	return p.Admit(salt, to, 0, 1, 1)
}

// admits is the policy decision against the committed (phase-frozen)
// depth.
func (p *Plane) admits(salt uint64, to int, n uint64, ttl, floodTTL int) bool {
	d := p.depth[to]
	cap64 := int64(p.cfg.QueueDepth)
	switch p.cfg.Policy {
	case Unbounded:
		return true
	case DropTail:
		return d < cap64
	case RED:
		if d >= cap64 {
			return false
		}
		minTh := cap64 / 2
		if d < minTh {
			return true
		}
		// Linear ramp from the midpoint to certain drop at full occupancy,
		// drawn per (peer, message) so concurrent floods shed identically
		// regardless of execution order.
		prob := float64(d-minTh+1) / float64(cap64-minTh)
		derived := p.cfg.Seed ^ (salt * 0x94d049bb133111eb) ^
			(uint64(to) * 0x9e3779b97f4a7c15) ^ (n * 0xbf58476d1ce4e5b9)
		return !rng.NewNamed(derived, siteRED).Bool(prob)
	case TTLAware:
		if ttl < 1 {
			ttl = 1
		}
		if floodTTL < ttl {
			floodTTL = ttl
		}
		if ttl >= floodTTL {
			// Fresh (full-TTL) messages ride an express lane: admission
			// checks only the fresh backlog, and service drains it first,
			// so far-from-origin copies can never crowd fresh queries out.
			return p.freshDepth[to] < cap64
		}
		// A far copy with remaining TTL t may only occupy the t/T0 head of
		// the total backlog: the farther from its origin, the earlier it
		// sheds.
		allow := cap64 * int64(ttl) / int64(floodTTL)
		if allow < 1 {
			allow = 1
		}
		return d < allow
	default:
		return false
	}
}

// Blocked reports whether peer `to`'s circuit breaker is open, in which
// case forwarders suppress the send entirely (the copy is never
// transmitted and never counted as a message). Reads the phase-frozen
// mask.
func (p *Plane) Blocked(to int) bool {
	if p == nil || p.blocked == nil {
		return false
	}
	return p.blocked[to]
}

// AddSuppressed records k sends suppressed by open breakers (accumulated
// locally by a flood, published once at flood end).
func (p *Plane) AddSuppressed(k int64) {
	if p == nil || k == 0 {
		return
	}
	p.suppressed.Add(k)
	p.om.suppressed.Add(k)
}

// QueueDelayS is the committed service backlog of peer id in simulated
// seconds — how long a newly queued message waits before service.
func (p *Plane) QueueDelayS(id int) int64 {
	if !p.Enabled() {
		return 0
	}
	return p.depth[id] * int64(p.cfg.ServiceCostMs) / 1000
}

// Depth is peer id's committed queue depth in messages.
func (p *Plane) Depth(id int) int64 {
	if !p.Enabled() {
		return 0
	}
	return p.depth[id]
}

// Stats returns the committed tallies.
func (p *Plane) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	st := p.stats
	st.BreakerSuppressed = p.suppressed.Load()
	return st
}

// Advance moves the plane's clock to sim-time now: elapsed service time
// drains every queue (one message per ServiceCostMs, with the remainder
// carried), and open breakers whose cooldown has elapsed half-open.
// Single-threaded.
func (p *Plane) Advance(now int64) {
	if !p.Enabled() {
		return
	}
	if elapsed := now - p.lastAdvance; elapsed > 0 {
		p.carryMs += elapsed * 1000
		if drain := p.carryMs / int64(p.cfg.ServiceCostMs); drain > 0 {
			p.carryMs -= drain * int64(p.cfg.ServiceCostMs)
			for i, d := range p.depth {
				if d == 0 {
					continue
				}
				if d <= drain {
					p.stats.Served += d
					p.depth[i] = 0
				} else {
					p.stats.Served += drain
					p.depth[i] = d - drain
				}
				// The fresh express lane is served first; whatever service
				// the total backlog received comes out of it before the far
				// backlog (freshDepth <= depth holds by construction).
				if p.freshDepth != nil && p.freshDepth[i] > 0 {
					if f := p.freshDepth[i]; f <= drain {
						p.freshDepth[i] = 0
					} else {
						p.freshDepth[i] = f - drain
					}
				}
			}
		}
	}
	p.lastAdvance = now
	if p.openCount > 0 {
		for i := range p.breakers {
			b := &p.breakers[i]
			if b.state == brOpen && now-b.openedAt >= p.cfg.BreakerCooldownS {
				b.state = brHalfOpen
				p.blocked[i] = false
				p.openCount--
			}
		}
	}
}

// Commit folds the phase's atomic admission tallies into committed state:
// queue depths grow by the accepted count, the depth histogram observes
// every touched queue, and breaker windows consume the phase's outcomes in
// canonical order (accepts before rejects). Single-threaded; call after
// the concurrent fan-out has joined.
func (p *Plane) Commit(now int64) {
	if !p.Enabled() {
		return
	}
	for i := range p.attempts {
		att := atomic.LoadInt64(&p.attempts[i])
		if att == 0 {
			continue
		}
		rej := atomic.LoadInt64(&p.rejects[i])
		p.attempts[i], p.rejects[i] = 0, 0
		acc := att - rej
		p.stats.Enqueued += acc
		p.stats.Shed += rej
		if acc > 0 {
			p.depth[i] += acc
			if p.depth[i] > p.stats.MaxDepth {
				p.stats.MaxDepth = p.depth[i]
			}
		}
		p.om.depth.Observe(p.depth[i])
		if p.freshAtt != nil {
			fa := atomic.LoadInt64(&p.freshAtt[i])
			fr := atomic.LoadInt64(&p.freshRej[i])
			p.freshAtt[i], p.freshRej[i] = 0, 0
			if p.freshDepth != nil {
				p.freshDepth[i] += fa - fr
			}
			if p.cfg.Breakers {
				p.feedBreaker(i, fa-fr, fr, now)
			}
		}
	}
}

// feedBreaker advances peer i's breaker with one committed phase's
// outcomes: acc accepted sends then rej rejected sends, in that canonical
// order. Only full-TTL (fresh) attempts — including keepalives — count as
// evidence: a TTL-aware queue shedding far-ring copies is operating as
// designed, and must not trip its neighbors' breakers; the breaker opens
// only when even fresh traffic is rejected. While closed, outcomes enter
// the N-of-M ring; tripping opens the breaker and raises the suppression
// mask. A half-open breaker judges the
// phase as a probe round: any reject re-opens (fresh cooldown), otherwise
// any accepted probe closes it. Open breakers ignore observations (pings
// still reach the queue while floods are suppressed).
func (p *Plane) feedBreaker(i int, acc, rej int64, now int64) {
	b := &p.breakers[i]
	switch b.state {
	case brOpen:
		return
	case brHalfOpen:
		if rej > 0 {
			p.openBreaker(i, now)
		} else if acc > 0 {
			b.state = brClosed
			b.reset()
		}
		return
	}
	// Feeding more than a full window of one outcome is idempotent beyond
	// the first M, so cap the loops without changing the result.
	m := int64(p.cfg.BreakerWindow)
	if acc > m {
		acc = m
	}
	if rej > m {
		rej = m
	}
	for ; acc > 0; acc-- {
		b.push(false)
	}
	for ; rej > 0; rej-- {
		b.push(true)
		if b.rejects >= p.cfg.BreakerTrip {
			p.openBreaker(i, now)
			return
		}
	}
}

// openBreaker transitions peer i's breaker to open at sim-time now.
func (p *Plane) openBreaker(i int, now int64) {
	b := &p.breakers[i]
	if b.state != brOpen {
		p.openCount++
	}
	b.state = brOpen
	b.openedAt = now
	b.reset()
	p.blocked[i] = true
	p.stats.BreakerOpens++
	p.om.breakerOpen.Inc()
}

// push records one send outcome in the closed-state ring.
func (b *breaker) push(rej bool) {
	if b.count == len(b.window) {
		if b.window[b.idx] {
			b.rejects--
		}
	} else {
		b.count++
	}
	b.window[b.idx] = rej
	if rej {
		b.rejects++
	}
	b.idx++
	if b.idx == len(b.window) {
		b.idx = 0
	}
}

// reset clears the outcome ring.
func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.count, b.rejects = 0, 0, 0
}
