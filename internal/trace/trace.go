// Package trace defines the on-disk trace formats that connect the
// collection tools (Gnutella crawler, iTunes crawler, query logger) to the
// analyses, mirroring the paper's methodology where trace files were the
// interface between measurement and analysis.
//
// Three record kinds exist:
//
//   - ObjectRecord: one (peer, shared file name) observation from a
//     Gnutella file crawl.
//   - SongRecord: one annotated song observation from an iTunes share
//     crawl (track/artist/album/genre).
//   - QueryRecord: one timestamped query string from the query logger.
//
// Traces serialize to a line-oriented, tab-separated text format with a
// single header line, so they stream, diff and grep well. Tabs and newlines
// never occur in generated names; Write rejects records containing them
// rather than corrupting the framing.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ObjectRecord is one crawled (peer, file name) pair.
type ObjectRecord struct {
	Peer int
	Name string
}

// ObjectTrace is a complete Gnutella file-crawl observation.
type ObjectTrace struct {
	Source  string // free-form provenance, e.g. "gnutella-sim-crawl"
	Peers   int    // number of peers successfully crawled
	Records []ObjectRecord
}

// SongRecord is one crawled iTunes share entry.
type SongRecord struct {
	Peer   int
	Track  string
	Artist string
	Album  string
	Genre  string
}

// SongTrace is a complete iTunes share-crawl observation.
type SongTrace struct {
	Source  string
	Peers   int // shares successfully read
	Records []SongRecord
}

// QueryRecord is one observed query.
type QueryRecord struct {
	Time  int64 // seconds since trace start
	Query string
}

// QueryTrace is a query log covering [0, Duration) seconds.
type QueryTrace struct {
	Source   string
	Duration int64
	Records  []QueryRecord
}

const (
	objectMagic = "querycentric-objects/1"
	songMagic   = "querycentric-songs/1"
	queryMagic  = "querycentric-queries/1"
)

func checkField(kind, s string) error {
	if strings.ContainsAny(s, "\t\n\r") {
		return fmt.Errorf("trace: %s contains tab or newline: %q", kind, s)
	}
	return nil
}

// Write serializes the trace.
func (t *ObjectTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := checkField("source", t.Source); err != nil {
		return err
	}
	fmt.Fprintf(bw, "%s\t%s\t%d\t%d\n", objectMagic, t.Source, t.Peers, len(t.Records))
	for _, r := range t.Records {
		if err := checkField("object name", r.Name); err != nil {
			return err
		}
		fmt.Fprintf(bw, "%d\t%s\n", r.Peer, r.Name)
	}
	return bw.Flush()
}

// ReadObjectTrace parses a trace written by Write.
func ReadObjectTrace(r io.Reader) (*ObjectTrace, error) {
	sc := newScanner(r)
	fields, err := sc.header(objectMagic, 4)
	if err != nil {
		return nil, err
	}
	t := &ObjectTrace{Source: fields[1]}
	if t.Peers, err = strconv.Atoi(fields[2]); err != nil {
		return nil, fmt.Errorf("trace: bad peer count: %w", err)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad record count: %w", err)
	}
	if n >= 0 {
		t.Records = make([]ObjectRecord, 0, n)
	}
	peers := map[int]struct{}{}
	for i := 0; n < 0 || i < n; i++ {
		f, err := sc.record(2)
		if err != nil {
			if n < 0 && errors.Is(err, io.ErrUnexpectedEOF) {
				break // streamed trace: records run until EOF
			}
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		peer, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("trace: record %d peer: %w", i, err)
		}
		t.Records = append(t.Records, ObjectRecord{Peer: peer, Name: f[1]})
		peers[peer] = struct{}{}
	}
	if t.Peers < 0 {
		t.Peers = len(peers) // streamed header: recompute
	}
	return t, nil
}

// Write serializes the trace.
func (t *SongTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := checkField("source", t.Source); err != nil {
		return err
	}
	fmt.Fprintf(bw, "%s\t%s\t%d\t%d\n", songMagic, t.Source, t.Peers, len(t.Records))
	for _, r := range t.Records {
		for _, f := range []string{r.Track, r.Artist, r.Album, r.Genre} {
			if err := checkField("song field", f); err != nil {
				return err
			}
		}
		fmt.Fprintf(bw, "%d\t%s\t%s\t%s\t%s\n", r.Peer, r.Track, r.Artist, r.Album, r.Genre)
	}
	return bw.Flush()
}

// ReadSongTrace parses a trace written by Write.
func ReadSongTrace(r io.Reader) (*SongTrace, error) {
	sc := newScanner(r)
	fields, err := sc.header(songMagic, 4)
	if err != nil {
		return nil, err
	}
	t := &SongTrace{Source: fields[1]}
	if t.Peers, err = strconv.Atoi(fields[2]); err != nil {
		return nil, fmt.Errorf("trace: bad peer count: %w", err)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad record count: %w", err)
	}
	t.Records = make([]SongRecord, 0, n)
	for i := 0; i < n; i++ {
		f, err := sc.record(5)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		peer, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("trace: record %d peer: %w", i, err)
		}
		t.Records = append(t.Records, SongRecord{
			Peer: peer, Track: f[1], Artist: f[2], Album: f[3], Genre: f[4],
		})
	}
	return t, nil
}

// Write serializes the trace.
func (t *QueryTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := checkField("source", t.Source); err != nil {
		return err
	}
	fmt.Fprintf(bw, "%s\t%s\t%d\t%d\n", queryMagic, t.Source, t.Duration, len(t.Records))
	for _, r := range t.Records {
		if err := checkField("query", r.Query); err != nil {
			return err
		}
		fmt.Fprintf(bw, "%d\t%s\n", r.Time, r.Query)
	}
	return bw.Flush()
}

// ReadQueryTrace parses a trace written by Write.
func ReadQueryTrace(r io.Reader) (*QueryTrace, error) {
	sc := newScanner(r)
	fields, err := sc.header(queryMagic, 4)
	if err != nil {
		return nil, err
	}
	t := &QueryTrace{Source: fields[1]}
	if t.Duration, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
		return nil, fmt.Errorf("trace: bad duration: %w", err)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad record count: %w", err)
	}
	t.Records = make([]QueryRecord, 0, n)
	for i := 0; i < n; i++ {
		f, err := sc.record(2)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d time: %w", i, err)
		}
		t.Records = append(t.Records, QueryRecord{Time: ts, Query: f[1]})
	}
	return t, nil
}

// scanner wraps line/field parsing with sane limits.
type scanner struct{ sc *bufio.Scanner }

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &scanner{sc: sc}
}

func (s *scanner) line() (string, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	return s.sc.Text(), nil
}

func (s *scanner) header(magic string, nf int) ([]string, error) {
	line, err := s.line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	fields := strings.Split(line, "\t")
	if len(fields) != nf || fields[0] != magic {
		return nil, fmt.Errorf("trace: not a %s trace (header %q)", magic, line)
	}
	return fields, nil
}

func (s *scanner) record(nf int) ([]string, error) {
	line, err := s.line()
	if err != nil {
		return nil, err
	}
	fields := strings.Split(line, "\t")
	if len(fields) != nf {
		return nil, fmt.Errorf("trace: want %d fields, got %d in %q", nf, len(fields), line)
	}
	return fields, nil
}
