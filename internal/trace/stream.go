package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Streaming IO for object traces. Paper-scale crawls observe >12M records;
// the streaming writer emits records as they are crawled (header record
// count -1 = "until EOF") and the scanner iterates without materializing
// the slice. ReadObjectTrace also accepts the -1 header, so streamed files
// stay compatible with the whole toolchain.

// streamUnknown marks an unknown record count in a streamed header.
const streamUnknown = -1

// ObjectWriter streams an object trace record by record.
type ObjectWriter struct {
	w      *bufio.Writer
	n      int
	peers  map[int]struct{}
	closed bool
}

// NewObjectWriter starts a streamed object trace with the given source
// label. Close must be called to flush.
func NewObjectWriter(w io.Writer, source string) (*ObjectWriter, error) {
	if err := checkField("source", source); err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	// Peers is unknown up front in a stream; readers recompute it.
	if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\n", objectMagic, source, streamUnknown, streamUnknown); err != nil {
		return nil, err
	}
	return &ObjectWriter{w: bw, peers: map[int]struct{}{}}, nil
}

// Write appends one record.
func (ow *ObjectWriter) Write(rec ObjectRecord) error {
	if ow.closed {
		return errors.New("trace: write after Close")
	}
	if err := checkField("object name", rec.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(ow.w, "%d\t%s\n", rec.Peer, rec.Name); err != nil {
		return err
	}
	ow.n++
	ow.peers[rec.Peer] = struct{}{}
	return nil
}

// N returns the number of records written so far.
func (ow *ObjectWriter) N() int { return ow.n }

// Close flushes the stream.
func (ow *ObjectWriter) Close() error {
	if ow.closed {
		return nil
	}
	ow.closed = true
	return ow.w.Flush()
}

// ObjectScanner iterates a (streamed or fixed-count) object trace without
// materializing it.
type ObjectScanner struct {
	sc        *scanner
	source    string
	remaining int // streamUnknown = until EOF
	rec       ObjectRecord
	err       error
}

// NewObjectScanner reads the header and prepares iteration.
func NewObjectScanner(r io.Reader) (*ObjectScanner, error) {
	sc := newScanner(r)
	fields, err := sc.header(objectMagic, 4)
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad record count: %w", err)
	}
	return &ObjectScanner{sc: sc, source: fields[1], remaining: n}, nil
}

// Source returns the trace's provenance label.
func (s *ObjectScanner) Source() string { return s.source }

// Scan advances to the next record, returning false at the end of the
// trace or on error (check Err).
func (s *ObjectScanner) Scan() bool {
	if s.err != nil || s.remaining == 0 {
		return false
	}
	line, err := s.sc.line()
	if err != nil {
		if s.remaining == streamUnknown && errors.Is(err, io.ErrUnexpectedEOF) {
			s.remaining = 0
			return false
		}
		s.err = err
		return false
	}
	i := strings.IndexByte(line, '\t')
	if i < 0 {
		s.err = fmt.Errorf("trace: malformed record %q", line)
		return false
	}
	peer, err := strconv.Atoi(line[:i])
	if err != nil {
		s.err = fmt.Errorf("trace: bad peer in %q", line)
		return false
	}
	s.rec = ObjectRecord{Peer: peer, Name: line[i+1:]}
	if s.remaining > 0 {
		s.remaining--
	}
	return true
}

// Record returns the current record (valid after a true Scan).
func (s *ObjectScanner) Record() ObjectRecord { return s.rec }

// Err returns the first error encountered.
func (s *ObjectScanner) Err() error { return s.err }
