package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestObjectTraceRoundTrip(t *testing.T) {
	in := &ObjectTrace{
		Source: "unit-test",
		Peers:  3,
		Records: []ObjectRecord{
			{Peer: 0, Name: "Aaron Neville - I Don't Know Much.mp3"},
			{Peer: 0, Name: "01 Track.wma"},
			{Peer: 2, Name: "Some Band - Song (Live).mp3"},
		},
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadObjectTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestObjectTraceEmpty(t *testing.T) {
	in := &ObjectTrace{Source: "empty", Peers: 0}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadObjectTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 0 || out.Source != "empty" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestObjectTraceRejectsTabs(t *testing.T) {
	in := &ObjectTrace{Source: "x", Records: []ObjectRecord{{Name: "bad\tname"}}}
	if err := in.Write(&bytes.Buffer{}); err == nil {
		t.Error("tab in name accepted")
	}
	in2 := &ObjectTrace{Source: "bad\nsource"}
	if err := in2.Write(&bytes.Buffer{}); err == nil {
		t.Error("newline in source accepted")
	}
}

func TestSongTraceRoundTrip(t *testing.T) {
	in := &SongTrace{
		Source: "itunes-test",
		Peers:  2,
		Records: []SongRecord{
			{Peer: 0, Track: "Blue Bayou", Artist: "Linda Ronstadt", Album: "Simple Dreams", Genre: "Rock"},
			{Peer: 1, Track: "Intro", Artist: "", Album: "", Genre: ""},
		},
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSongTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestQueryTraceRoundTrip(t *testing.T) {
	in := &QueryTrace{
		Source:   "phex-test",
		Duration: 604800,
		Records: []QueryRecord{
			{Time: 0, Query: "aaron neville"},
			{Time: 59, Query: "madonna"},
			{Time: 604799, Query: "linda ronstadt blue bayou"},
		},
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadQueryTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestReadWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	(&ObjectTrace{Source: "x"}).Write(&buf)
	if _, err := ReadQueryTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("query reader accepted object trace")
	}
	if _, err := ReadSongTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("song reader accepted object trace")
	}
}

func TestReadTruncated(t *testing.T) {
	in := &ObjectTrace{Source: "x", Peers: 1,
		Records: []ObjectRecord{{Peer: 0, Name: "a.mp3"}, {Peer: 0, Name: "b.mp3"}}}
	var buf bytes.Buffer
	in.Write(&buf)
	full := buf.String()
	// Drop the last line.
	cut := full[:strings.LastIndex(strings.TrimRight(full, "\n"), "\n")+1]
	if _, err := ReadObjectTrace(strings.NewReader(cut)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestReadGarbage(t *testing.T) {
	for _, g := range []string{"", "garbage", "querycentric-objects/1\tx", "querycentric-objects/1\tx\tnotanum\t0\n"} {
		if _, err := ReadObjectTrace(strings.NewReader(g)); err == nil {
			t.Errorf("garbage %q accepted", g)
		}
	}
}

func TestReadBadRecord(t *testing.T) {
	bad := "querycentric-objects/1\tsrc\t1\t1\nnotanumber\tname.mp3\n"
	if _, err := ReadObjectTrace(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric peer accepted")
	}
	bad2 := "querycentric-objects/1\tsrc\t1\t1\n0\n"
	if _, err := ReadObjectTrace(strings.NewReader(bad2)); err == nil {
		t.Error("missing field accepted")
	}
}

func TestQuickObjectRoundTrip(t *testing.T) {
	f := func(peer uint8, rawName string) bool {
		name := strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, rawName)
		in := &ObjectTrace{Source: "q", Peers: 1,
			Records: []ObjectRecord{{Peer: int(peer), Name: name}}}
		var buf bytes.Buffer
		if err := in.Write(&buf); err != nil {
			return false
		}
		out, err := ReadObjectTrace(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObjectTraceWrite(b *testing.B) {
	tr := &ObjectTrace{Source: "bench", Peers: 100}
	for i := 0; i < 10000; i++ {
		tr.Records = append(tr.Records, ObjectRecord{Peer: i % 100, Name: "Artist Name - A Song Title (Remastered).mp3"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectTraceRead(b *testing.B) {
	tr := &ObjectTrace{Source: "bench", Peers: 100}
	for i := 0; i < 10000; i++ {
		tr.Records = append(tr.Records, ObjectRecord{Peer: i % 100, Name: "Artist Name - A Song Title (Remastered).mp3"})
	}
	var buf bytes.Buffer
	tr.Write(&buf)
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadObjectTrace(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamedObjectWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ow, err := NewObjectWriter(&buf, "streamed")
	if err != nil {
		t.Fatal(err)
	}
	recs := []ObjectRecord{
		{Peer: 0, Name: "A - B.mp3"},
		{Peer: 2, Name: "C - D.mp3"},
		{Peer: 0, Name: "E.mp3"},
	}
	for _, r := range recs {
		if err := ow.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if ow.N() != 3 {
		t.Errorf("N = %d", ow.N())
	}
	if err := ow.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ow.Write(ObjectRecord{}); err == nil {
		t.Error("write after Close accepted")
	}
	// Full reader accepts the streamed header.
	got, err := ReadObjectTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, recs) {
		t.Errorf("records: %+v", got.Records)
	}
	if got.Peers != 2 {
		t.Errorf("recomputed peers = %d, want 2", got.Peers)
	}
	if got.Source != "streamed" {
		t.Errorf("source = %q", got.Source)
	}
}

func TestObjectScannerOverBothFormats(t *testing.T) {
	// Fixed-count trace.
	fixed := &ObjectTrace{Source: "fixed", Peers: 1,
		Records: []ObjectRecord{{Peer: 0, Name: "x.mp3"}, {Peer: 0, Name: "y.mp3"}}}
	var fb bytes.Buffer
	fixed.Write(&fb)
	// Streamed trace.
	var sb bytes.Buffer
	ow, _ := NewObjectWriter(&sb, "stream")
	ow.Write(ObjectRecord{Peer: 1, Name: "z.mp3"})
	ow.Close()

	for name, raw := range map[string][]byte{"fixed": fb.Bytes(), "stream": sb.Bytes()} {
		sc, err := NewObjectScanner(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := 0
		for sc.Scan() {
			if sc.Record().Name == "" {
				t.Fatalf("%s: empty record", name)
			}
			n++
		}
		if sc.Err() != nil {
			t.Fatalf("%s: %v", name, sc.Err())
		}
		if name == "fixed" && n != 2 || name == "stream" && n != 1 {
			t.Errorf("%s: scanned %d records", name, n)
		}
		if sc.Source() != name {
			t.Errorf("%s: source %q", name, sc.Source())
		}
	}
}

func TestObjectScannerMalformed(t *testing.T) {
	bad := "querycentric-objects/1\tsrc\t-1\t-1\nnotanumber\tname\n"
	sc, err := NewObjectScanner(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Error("malformed record scanned")
	}
	if sc.Err() == nil {
		t.Error("no error reported")
	}
	bad2 := "querycentric-objects/1\tsrc\t-1\t-1\nnotabfield\n"
	sc2, _ := NewObjectScanner(strings.NewReader(bad2))
	if sc2.Scan() || sc2.Err() == nil {
		t.Error("tab-less record accepted")
	}
}

func TestStreamedWriterRejectsTabs(t *testing.T) {
	var buf bytes.Buffer
	ow, _ := NewObjectWriter(&buf, "s")
	if err := ow.Write(ObjectRecord{Name: "bad\tname"}); err == nil {
		t.Error("tab accepted")
	}
	if _, err := NewObjectWriter(&buf, "bad\nsource"); err == nil {
		t.Error("newline source accepted")
	}
}
