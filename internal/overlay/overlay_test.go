package overlay

import (
	"testing"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := NewGraph(-5); err == nil {
		t.Error("negative vertices accepted")
	}
}

func TestAddEdge(t *testing.T) {
	g, _ := NewGraph(5)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if g.Edges() != 1 {
		t.Errorf("edges = %d", g.Edges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("bad degrees")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := NewErdosRenyi(500, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("ER graph disconnected")
	}
	mean := 2 * float64(g.Edges()) / 500
	if mean < 7 || mean > 9 {
		t.Errorf("mean degree %v, want ~8", mean)
	}
	if g.TwoTier() {
		t.Error("ER graph should be flat")
	}
	if !g.Ultra(3) {
		t.Error("flat graph nodes must all relay")
	}
	if _, err := NewErdosRenyi(10, 1, 1); err == nil {
		t.Error("degree < 2 accepted")
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := NewRandomRegular(400, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("regular graph disconnected")
	}
	degs := g.Degrees()
	if degs[0] < 4 || degs[len(degs)-1] > 8 {
		t.Errorf("degree range [%d,%d], want ≈6", degs[0], degs[len(degs)-1])
	}
	if _, err := NewRandomRegular(5, 5, 1); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := NewRandomRegular(5, 3, 1); err == nil {
		t.Error("odd n*d accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := NewBarabasiAlbert(1000, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("BA graph disconnected")
	}
	degs := g.Degrees()
	// Power-law: the max degree should far exceed the median.
	if degs[len(degs)-1] < 4*degs[500] {
		t.Errorf("max degree %d not heavy-tailed vs median %d", degs[len(degs)-1], degs[500])
	}
	if _, err := NewBarabasiAlbert(10, 0, 1); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestGnutellaTwoTier(t *testing.T) {
	g, err := NewGnutella(2000, DefaultGnutellaConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("gnutella graph disconnected")
	}
	if !g.TwoTier() {
		t.Error("expected two-tier roles")
	}
	ultras := 0
	for v := 0; v < g.N(); v++ {
		if g.Ultra(v) {
			ultras++
		} else {
			// Leaves must connect only to ultrapeers.
			for _, nb := range g.Neighbors(v) {
				if !g.Ultra(int(nb)) {
					t.Fatalf("leaf %d adjacent to leaf %d", v, nb)
				}
			}
		}
	}
	if ultras < 200 || ultras > 400 {
		t.Errorf("ultrapeers = %d, want ~300", ultras)
	}
	if _, err := NewGnutella(100, GnutellaConfig{UltraFrac: 0}, 1); err == nil {
		t.Error("zero UltraFrac accepted")
	}
}

func TestBFSBasics(t *testing.T) {
	// Path graph 0-1-2-3-4.
	g, _ := NewGraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	if got := len(g.BFS(0, 1)); got != 1 {
		t.Errorf("TTL1 reached %d, want 1", got)
	}
	if got := len(g.BFS(0, 2)); got != 2 {
		t.Errorf("TTL2 reached %d, want 2", got)
	}
	if got := len(g.BFS(0, 10)); got != 4 {
		t.Errorf("TTL10 reached %d, want 4", got)
	}
	if got := len(g.BFS(2, 1)); got != 2 {
		t.Errorf("mid TTL1 reached %d, want 2", got)
	}
	if got := len(g.BFS(-1, 3)); got != 0 {
		t.Error("invalid origin should reach nothing")
	}
	if got := len(g.BFS(0, 0)); got != 0 {
		t.Error("TTL 0 should reach nothing")
	}
}

func TestBFSLeavesDoNotRelay(t *testing.T) {
	// Star of ultrapeer 0 with leaves 1..4, leaf 1 also tied to ultra 5.
	g, _ := NewGraph(6)
	g.ultra = []bool{true, false, false, false, false, true}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(0, 4)
	g.AddEdge(1, 5)
	// From 0 with high TTL: reaches 1,2,3,4 but NOT 5 (leaf 1 won't relay).
	if got := len(g.BFS(0, 10)); got != 4 {
		t.Errorf("reached %d, want 4 (leaf must not relay)", got)
	}
}

func TestCoverageReusable(t *testing.T) {
	g, err := NewErdosRenyi(300, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	cov := NewCoverage(g)
	for trial := 0; trial < 10; trial++ {
		origin := trial * 7 % 300
		for ttl := 1; ttl <= 3; ttl++ {
			want := len(g.BFS(origin, ttl))
			got := len(cov.Reached(origin, ttl))
			if got != want {
				t.Fatalf("trial %d ttl %d: Coverage=%d BFS=%d", trial, ttl, got, want)
			}
		}
	}
}

func TestCoverageStatsMonotone(t *testing.T) {
	g, err := NewGnutella(3000, DefaultGnutellaConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	fracs, err := CoverageStats(g, 5, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(fracs) != 5 {
		t.Fatalf("got %d fractions", len(fracs))
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] < fracs[i-1] {
			t.Errorf("coverage not monotone at TTL %d: %v", i+1, fracs)
		}
	}
	if fracs[0] <= 0 || fracs[4] > 1 {
		t.Errorf("fractions out of range: %v", fracs)
	}
	// TTL-5 should cover a large share of a 3000-node two-tier net.
	if fracs[4] < 0.3 {
		t.Errorf("TTL-5 coverage %v suspiciously low", fracs[4])
	}
	if _, err := CoverageStats(g, 0, 1, 1); err == nil {
		t.Error("maxTTL 0 accepted")
	}
	if _, err := CoverageStats(g, 1, 0, 1); err == nil {
		t.Error("samples 0 accepted")
	}
}

func TestMeanQueryHops(t *testing.T) {
	g, err := NewGnutella(2000, DefaultGnutellaConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := MeanQueryHops(g, 4, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if hops < 1 || hops > 4 {
		t.Errorf("mean hops = %v, want within [1,4]", hops)
	}
	if _, err := MeanQueryHops(g, 0, 1, 1); err == nil {
		t.Error("ttl 0 accepted")
	}
}

func BenchmarkBFS40kTTL5(b *testing.B) {
	g, err := NewGnutella(40000, DefaultGnutellaConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cov := NewCoverage(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov.Reached(i%40000, 5)
	}
}
