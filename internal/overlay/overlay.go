// Package overlay provides the overlay-graph substrate for the search
// simulations: Gnutella-like two-tier topologies, Erdős–Rényi and
// Barabási–Albert random graphs, random-regular graphs, and TTL-bounded
// coverage computations (the basis of the paper's Section V simulation of a
// 40,000-node network and the TTL/coverage table).
package overlay

import (
	"fmt"
	"sort"

	"querycentric/internal/rng"
)

// Graph is an undirected overlay graph over vertices 0..N-1.
type Graph struct {
	n     int
	adj   [][]int32
	ultra []bool // nil for flat topologies
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("overlay: vertex count must be positive, got %d", n)
	}
	return &Graph{n: n, adj: make([][]int32, n)}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicates are
// rejected.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("overlay: self loop at %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("overlay: edge (%d,%d) out of range", u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("overlay: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	return nil
}

// HasEdge reports whether (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	for _, w := range a {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Neighbors returns v's adjacency list (not a copy; callers must not
// mutate).
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Ultra reports whether v is an ultrapeer (always true in flat graphs,
// where every node relays).
func (g *Graph) Ultra(v int) bool {
	if g.ultra == nil {
		return true
	}
	return g.ultra[v]
}

// TwoTier reports whether the graph carries ultrapeer/leaf roles.
func (g *Graph) TwoTier() bool { return g.ultra != nil }

// Edges counts undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Degrees returns the sorted degree sequence.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = len(g.adj[i])
	}
	sort.Ints(out)
	return out
}

// NewErdosRenyi builds a connected Erdős–Rényi-style graph with the given
// average degree: a Hamiltonian ring for connectivity plus random chords.
func NewErdosRenyi(n int, avgDegree float64, seed uint64) (*Graph, error) {
	if avgDegree < 2 {
		return nil, fmt.Errorf("overlay: average degree must be at least 2, got %g", avgDegree)
	}
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return g, nil
	}
	r := rng.NewNamed(seed, "overlay/er")
	for i := 0; i < n; i++ {
		if !g.HasEdge(i, (i+1)%n) {
			if err := g.AddEdge(i, (i+1)%n); err != nil {
				return nil, err
			}
		}
	}
	extra := int(float64(n)*avgDegree/2) - n
	for added := 0; added < extra; {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
		added++
	}
	return g, nil
}

// NewRandomRegular builds an approximately d-regular connected graph via
// the pairing model with rejection, falling back to near-regular if a
// perfect matching stalls.
func NewRandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d < 2 || d >= n {
		return nil, fmt.Errorf("overlay: degree %d invalid for %d vertices", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("overlay: n*d must be even (n=%d, d=%d)", n, d)
	}
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	r := rng.NewNamed(seed, "overlay/regular")
	// Ring first (consumes 2 of each vertex's degree budget, keeps the
	// graph connected), then pair remaining stubs randomly.
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			return nil, err
		}
	}
	stubs := make([]int, 0, n*(d-2))
	for i := 0; i < n; i++ {
		for k := 0; k < d-2; k++ {
			stubs = append(stubs, i)
		}
	}
	r.ShuffleInts(stubs)
	for attempts := 0; len(stubs) >= 2 && attempts < 20*n*d; attempts++ {
		u := stubs[len(stubs)-1]
		v := stubs[len(stubs)-2]
		if u != v && !g.HasEdge(u, v) {
			g.adj[u] = append(g.adj[u], int32(v))
			g.adj[v] = append(g.adj[v], int32(u))
			stubs = stubs[:len(stubs)-2]
			continue
		}
		// Reshuffle the remaining stubs and retry.
		r.ShuffleInts(stubs)
	}
	return g, nil
}

// NewBarabasiAlbert builds a preferential-attachment graph: each new vertex
// attaches m edges to existing vertices with probability proportional to
// degree, producing the power-law degree distribution observed in real
// unstructured overlays.
func NewBarabasiAlbert(n, m int, seed uint64) (*Graph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("overlay: attachment count %d invalid for %d vertices", m, n)
	}
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	r := rng.NewNamed(seed, "overlay/ba")
	// Seed clique of m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if err := g.AddEdge(i, j); err != nil {
				return nil, err
			}
		}
	}
	// Repeated-vertex list: sampling uniformly from it is sampling
	// proportionally to degree.
	var targets []int32
	for i := 0; i <= m; i++ {
		for range g.adj[i] {
			targets = append(targets, int32(i))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int32]bool{}
		for len(chosen) < m {
			t := targets[r.Intn(len(targets))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			if err := g.AddEdge(v, int(t)); err != nil {
				return nil, err
			}
			targets = append(targets, t, int32(v))
		}
	}
	return g, nil
}

// GnutellaConfig shapes the two-tier topology used for the paper's
// 40,000-node simulation.
type GnutellaConfig struct {
	UltraFrac  float64 // fraction of ultrapeers (≈0.15 in the modern network)
	UltraDeg   int     // ultrapeer-to-ultrapeer degree
	LeafUltras int     // ultrapeers per leaf
}

// DefaultGnutellaConfig matches the measured modern-Gnutella shape; with
// these parameters a TTL-2..5 flood covers the fractions the paper reports
// (≈0.05%, ~0.3%, ~2.6%, 26%, 83% at 40,000 nodes).
func DefaultGnutellaConfig() GnutellaConfig {
	return GnutellaConfig{UltraFrac: 0.15, UltraDeg: 10, LeafUltras: 3}
}

// NewGnutella builds a two-tier ultrapeer/leaf overlay. Only ultrapeers
// relay queries (Graph.Ultra reports the role); leaves attach to LeafUltras
// ultrapeers.
func NewGnutella(n int, cfg GnutellaConfig, seed uint64) (*Graph, error) {
	if cfg.UltraFrac <= 0 || cfg.UltraFrac > 1 {
		return nil, fmt.Errorf("overlay: UltraFrac out of range: %g", cfg.UltraFrac)
	}
	if cfg.UltraDeg < 2 || cfg.LeafUltras < 1 {
		return nil, fmt.Errorf("overlay: degrees invalid: %+v", cfg)
	}
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	nUltra := int(float64(n) * cfg.UltraFrac)
	if nUltra < 2 {
		nUltra = 2
	}
	if nUltra > n {
		nUltra = n
	}
	g.ultra = make([]bool, n)
	r := rng.NewNamed(seed, "overlay/gnutella")
	perm := r.Perm(n)
	ultras := perm[:nUltra]
	for _, u := range ultras {
		g.ultra[u] = true
	}
	// Ultrapeer ring + chords.
	for i := range ultras {
		u, v := ultras[i], ultras[(i+1)%len(ultras)]
		if !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	for _, u := range ultras {
		for attempts := 0; g.Degree(u) < cfg.UltraDeg && attempts < 20*cfg.UltraDeg; attempts++ {
			v := ultras[r.Intn(len(ultras))]
			if v == u || g.HasEdge(u, v) || g.Degree(v) >= cfg.UltraDeg+4 {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	// Leaves.
	for _, leaf := range perm[nUltra:] {
		for k := 0; k < cfg.LeafUltras; k++ {
			u := ultras[r.Intn(len(ultras))]
			if g.HasEdge(leaf, u) {
				continue
			}
			if err := g.AddEdge(leaf, u); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// IsConnected reports whether the graph is one component.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}
