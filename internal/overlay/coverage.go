package overlay

import (
	"fmt"

	"querycentric/internal/parallel"
	"querycentric/internal/rng"
)

// BFS computes the set of vertices a TTL-bounded flood from origin
// processes, excluding the origin itself. In two-tier graphs only
// ultrapeers relay (leaves receive but do not forward), matching Gnutella
// semantics. The returned epoch buffer can be reused across calls via
// BFSInto for allocation-free sweeps.
func (g *Graph) BFS(origin, ttl int) []int32 {
	visited := make([]int32, 0, 64)
	mark := make([]int32, g.n)
	for i := range mark {
		mark[i] = -1
	}
	return g.bfsInto(origin, ttl, mark, 0, visited)
}

// Coverage is a reusable TTL-bounded flood engine over one graph.
type Coverage struct {
	g     *Graph
	mark  []int32
	epoch int32
	buf   []int32
}

// NewCoverage creates a reusable engine.
func NewCoverage(g *Graph) *Coverage {
	mark := make([]int32, g.N())
	for i := range mark {
		mark[i] = -1
	}
	return &Coverage{g: g, mark: mark}
}

// Reached returns the vertices processed by a TTL-bounded flood from
// origin (origin excluded). The returned slice is reused by the next call.
func (c *Coverage) Reached(origin, ttl int) []int32 {
	c.epoch++
	c.buf = c.g.bfsInto(origin, ttl, c.mark, c.epoch, c.buf[:0])
	return c.buf
}

// bfsInto runs the flood, marking visits with the given epoch value.
func (g *Graph) bfsInto(origin, ttl int, mark []int32, epoch int32, out []int32) []int32 {
	if origin < 0 || origin >= g.n || ttl < 1 {
		return out
	}
	type item struct {
		v   int32
		ttl int32
	}
	mark[origin] = epoch
	frontier := make([]item, 0, len(g.adj[origin]))
	for _, nb := range g.adj[origin] {
		frontier = append(frontier, item{nb, int32(ttl)})
	}
	var next []item
	for len(frontier) > 0 {
		next = next[:0]
		for _, it := range frontier {
			if mark[it.v] == epoch {
				continue
			}
			mark[it.v] = epoch
			out = append(out, it.v)
			if it.ttl <= 1 || !g.Ultra(int(it.v)) {
				continue
			}
			for _, nb := range g.adj[it.v] {
				if mark[nb] != epoch {
					next = append(next, item{nb, it.ttl - 1})
				}
			}
		}
		frontier, next = next, frontier
	}
	return out
}

// CoverageStats reports the mean fraction of the network processed by
// floods at each TTL in 1..maxTTL, averaged over sample random origins —
// the quantity behind the paper's "TTL 1..5 reach 0.05%...82.95%" table.
// It is CoverageStatsN on one worker.
func CoverageStats(g *Graph, maxTTL, samples int, seed uint64) ([]float64, error) {
	return CoverageStatsN(g, maxTTL, samples, seed, 1)
}

// CoverageStatsN is CoverageStats fanned out over a bounded worker pool.
// Sample i draws its origin from the derived stream "sample/i" and each
// worker floods through its own Coverage engine; per-sample fractions are
// summed in sample order, so the result is byte-identical for every
// workers value.
func CoverageStatsN(g *Graph, maxTTL, samples int, seed uint64, workers int) ([]float64, error) {
	if maxTTL < 1 {
		return nil, fmt.Errorf("overlay: maxTTL must be positive, got %d", maxTTL)
	}
	if samples < 1 {
		return nil, fmt.Errorf("overlay: samples must be positive, got %d", samples)
	}
	base := rng.NewNamed(seed, "overlay/coverage")
	perSample, err := parallel.MapWith(workers, samples,
		func() *Coverage { return NewCoverage(g) },
		func(cov *Coverage, i int) ([]float64, error) {
			origin := base.Derive(fmt.Sprintf("sample/%d", i)).Intn(g.N())
			fracs := make([]float64, maxTTL)
			for ttl := 1; ttl <= maxTTL; ttl++ {
				fracs[ttl-1] = float64(len(cov.Reached(origin, ttl))) / float64(g.N())
			}
			return fracs, nil
		})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, maxTTL)
	for _, fracs := range perSample { // sample order: bit-identical floats
		for i, f := range fracs {
			sums[i] += f
		}
	}
	for i := range sums {
		sums[i] /= float64(samples)
	}
	return sums, nil
}

// MeanQueryHops estimates the mean number of hops a query takes to reach a
// processed peer under a TTL-bounded flood (the paper cites 2.47 hops mean
// for queries observed in 2006). It is MeanQueryHopsN on one worker.
func MeanQueryHops(g *Graph, ttl, samples int, seed uint64) (float64, error) {
	return MeanQueryHopsN(g, ttl, samples, seed, 1)
}

// hopScratch is the per-worker state of a MeanQueryHopsN sample: an
// epoch-stamped visited array plus reusable level buffers.
type hopScratch struct {
	mark        []int32
	epoch       int32
	level, next []int32
}

// MeanQueryHopsN is MeanQueryHops fanned out over a bounded worker pool.
// Sample i draws its origin from the derived stream "sample/i"; the
// per-sample (hops, peers) tallies are summed in sample order, so the
// result is byte-identical for every workers value.
func MeanQueryHopsN(g *Graph, ttl, samples int, seed uint64, workers int) (float64, error) {
	if ttl < 1 || samples < 1 {
		return 0, fmt.Errorf("overlay: invalid ttl %d or samples %d", ttl, samples)
	}
	base := rng.NewNamed(seed, "overlay/hops")
	type tally struct{ hops, peers float64 }
	perSample, err := parallel.MapWith(workers, samples,
		func() *hopScratch { return &hopScratch{mark: make([]int32, g.N())} },
		func(sc *hopScratch, i int) (tally, error) {
			origin := base.Derive(fmt.Sprintf("sample/%d", i)).Intn(g.N())
			sc.epoch++
			s := sc.epoch
			var t tally
			// BFS by levels, weighting each level by its hop count.
			sc.mark[origin] = s
			level, next := sc.level[:0], sc.next[:0]
			defer func() { sc.level, sc.next = level[:0], next[:0] }()
			for _, nb := range g.adj[origin] {
				level = append(level, nb)
			}
			for hop := 1; hop <= ttl && len(level) > 0; hop++ {
				next = next[:0]
				for _, v := range level {
					if sc.mark[v] == s {
						continue
					}
					sc.mark[v] = s
					t.hops += float64(hop)
					t.peers++
					if hop == ttl || !g.Ultra(int(v)) {
						continue
					}
					for _, nb := range g.adj[v] {
						if sc.mark[nb] != s {
							next = append(next, nb)
						}
					}
				}
				level, next = next, level
			}
			return t, nil
		})
	if err != nil {
		return 0, err
	}
	var totalHops, totalPeers float64
	for _, t := range perSample {
		totalHops += t.hops
		totalPeers += t.peers
	}
	if totalPeers == 0 {
		return 0, fmt.Errorf("overlay: floods reached no peers")
	}
	return totalHops / totalPeers, nil
}
