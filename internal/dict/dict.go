// Package dict implements the shared, immutable term dictionary that makes
// paper-scale keyword handling routine: every token that appears in any
// shared file name is interned once to a dense uint32 TermID, and all
// downstream structures — per-peer posting indexes, query resolution, QRP
// route tables — work on integer IDs instead of strings.
//
// The motivation is the paper's own measurement: its April 2007 crawl saw
// 1.22M distinct terms across 12.1M file placements, so per-peer
// map[string][]int32 term indexes repeat millions of string keys (each
// retaining a lowered copy of the file name it was sliced from). Interning
// stores each term exactly once, lets posting indexes collapse into flat
// arrays, and lets the QRP hash of every term be computed once per network
// instead of once per (peer, flood).
//
// Determinism: IDs are assigned in lexicographic term order, so the
// dictionary built from a given name multiset is identical regardless of
// how the build was sharded across workers.
package dict

import (
	"fmt"
	"sort"
	"strings"
	"unsafe"

	"querycentric/internal/parallel"
	"querycentric/internal/qrp"
	"querycentric/internal/terms"
)

// TermID is a dense dictionary index. IDs are contiguous in [0, Len()).
type TermID uint32

// NoTerm marks a token absent from the dictionary (a query term that
// appears in no shared file name — the paper's mismatch case).
const NoTerm TermID = ^TermID(0)

// Dict is an immutable interned term dictionary. Safe for concurrent use
// after Build returns.
type Dict struct {
	byID  []string          // TermID → canonical term string
	ids   map[string]TermID // term → TermID
	prods []uint32          // TermID → QRP hash product (pre-shift)
}

// Build interns every token of every name in libraries. Tokenization fans
// out over up to `workers` goroutines (≤ 0 resolves to GOMAXPROCS); the
// result is byte-identical for every worker count because IDs are assigned
// in sorted term order after the shards merge.
func Build(libraries [][]string, workers int) *Dict {
	workers = parallel.Workers(workers)
	shards := workers
	if shards > len(libraries) {
		shards = len(libraries)
	}
	if shards < 1 {
		shards = 1
	}
	sets := make([]map[string]struct{}, shards)
	// Contiguous library ranges per shard; each worker tokenizes its own
	// range into a private set, so no locking and no ordering sensitivity.
	_ = parallel.ForEach(workers, shards, func(s int) error {
		lo := s * len(libraries) / shards
		hi := (s + 1) * len(libraries) / shards
		set := make(map[string]struct{})
		for _, lib := range libraries[lo:hi] {
			for _, name := range lib {
				for _, tok := range terms.Tokenize(name) {
					if _, dup := set[tok]; !dup {
						// Clone: Tokenize returns substrings of a lowered
						// copy of the whole name; storing them directly
						// would retain one such copy per distinct name.
						set[strings.Clone(tok)] = struct{}{}
					}
				}
			}
		}
		sets[s] = set
		return nil
	})
	union := sets[0]
	if union == nil {
		union = map[string]struct{}{}
	}
	for _, set := range sets[1:] {
		for tok := range set {
			union[tok] = struct{}{}
		}
	}
	d := &Dict{
		byID: make([]string, 0, len(union)),
		ids:  make(map[string]TermID, len(union)),
	}
	for tok := range union {
		d.byID = append(d.byID, tok)
	}
	sort.Strings(d.byID)
	d.prods = make([]uint32, len(d.byID))
	for i, tok := range d.byID {
		d.ids[tok] = TermID(i)
	}
	// QRP products are pure per term; hash them in parallel chunks.
	const chunk = 8192
	nChunks := (len(d.byID) + chunk - 1) / chunk
	_ = parallel.ForEach(workers, nChunks, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(d.byID) {
			hi = len(d.byID)
		}
		for i := lo; i < hi; i++ {
			d.prods[i] = qrp.HashProduct(d.byID[i])
		}
		return nil
	})
	return d
}

// FromNames builds a dictionary over a flat name list (one "library").
func FromNames(names []string, workers int) *Dict {
	return Build([][]string{names}, workers)
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.byID) }

// Term returns the canonical string of id. It panics on out-of-range IDs
// (including NoTerm), like a slice index.
func (d *Dict) Term(id TermID) string { return d.byID[id] }

// Lookup resolves one token.
func (d *Dict) Lookup(tok string) (TermID, bool) {
	id, ok := d.ids[tok]
	return id, ok
}

// Intern returns the dictionary's canonical instance of tok (so callers can
// drop the backing array tok was sliced from) and whether tok is known.
func (d *Dict) Intern(tok string) (string, bool) {
	if id, ok := d.ids[tok]; ok {
		return d.byID[id], true
	}
	return tok, false
}

// Resolve maps toks to TermIDs, appending to dst (pass dst[:0] to reuse a
// scratch slice). Unknown tokens resolve to NoTerm; ok reports whether
// every token was known. A conjunctive query with any unknown term can
// match nothing anywhere, so callers short-circuit on !ok.
func (d *Dict) Resolve(toks []string, dst []TermID) (ids []TermID, ok bool) {
	ok = true
	for _, tok := range toks {
		id, known := d.ids[tok]
		if !known {
			id = NoTerm
			ok = false
		}
		dst = append(dst, id)
	}
	return dst, ok
}

// Product returns the precomputed QRP hash product of id (see
// qrp.HashProduct); the slot for a table of 2^bits slots is
// qrp.SlotOf(Product(id), bits).
func (d *Dict) Product(id TermID) uint32 { return d.prods[id] }

// Slot returns id's QRP table slot at the given table width.
func (d *Dict) Slot(id TermID, bits uint) uint32 {
	return qrp.SlotOf(d.prods[id], bits)
}

// HeapBytes estimates the dictionary's retained heap: term bytes, the
// ID slices and the lookup map (conservative per-entry estimate).
func (d *Dict) HeapBytes() uint64 {
	var b uint64
	for _, t := range d.byID {
		b += uint64(len(t))
	}
	b += uint64(len(d.byID)) * uint64(unsafe.Sizeof("")) // string headers
	b += uint64(len(d.prods)) * 4
	// map[string]TermID: ~per-bucket overhead + key header + value.
	b += uint64(len(d.ids)) * (uint64(unsafe.Sizeof("")) + 4 + 16)
	return b
}

// Checksum folds the dictionary into a 64-bit FNV-1a fingerprint (for
// worker-count determinism gates).
func (d *Dict) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range d.byID {
		for i := 0; i < len(t); i++ {
			h = (h ^ uint64(t[i])) * prime64
		}
		h = (h ^ 0xff) * prime64
	}
	return h
}

// String describes the dictionary (diagnostics).
func (d *Dict) String() string {
	return fmt.Sprintf("dict{%d terms, ~%d KiB}", d.Len(), d.HeapBytes()/1024)
}
