// Package dict implements the shared, immutable term dictionary that makes
// paper-scale keyword handling routine: every token that appears in any
// shared file name is interned once to a dense uint32 TermID, and all
// downstream structures — per-peer posting indexes, query resolution, QRP
// route tables — work on integer IDs instead of strings.
//
// The motivation is the paper's own measurement: its April 2007 crawl saw
// 1.22M distinct terms across 12.1M file placements, so per-peer
// map[string][]int32 term indexes repeat millions of string keys (each
// retaining a lowered copy of the file name it was sliced from). Interning
// stores each term exactly once, lets posting indexes collapse into flat
// arrays, and lets the QRP hash of every term be computed once per network
// instead of once per (peer, flood).
//
// Storage is a single byte arena plus offsets: term id's bytes are
// termBytes[termOff[id]:termOff[id+1]], and Term returns a zero-copy view
// into the arena. A map accelerates token→ID lookups while indexes are
// being built; Compact drops it once construction ends, leaving binary
// search over the (lexicographically ordered) arena — a few string
// compares per query token, paid once per flood.
//
// Determinism: IDs are assigned in lexicographic term order, so the
// dictionary built from a given name multiset is identical regardless of
// how the build was sharded across workers.
package dict

import (
	"fmt"
	"sort"
	"strings"
	"unsafe"

	"querycentric/internal/parallel"
	"querycentric/internal/qrp"
	"querycentric/internal/terms"
)

// TermID is a dense dictionary index. IDs are contiguous in [0, Len()).
type TermID uint32

// NoTerm marks a token absent from the dictionary (a query term that
// appears in no shared file name — the paper's mismatch case).
const NoTerm TermID = ^TermID(0)

// Dict is an immutable interned term dictionary. Safe for concurrent use
// after Build returns; Compact must not race with lookups.
type Dict struct {
	termBytes []byte            // all term bytes, concatenated in ID order
	termOff   []uint32          // TermID → termBytes offset; Len()+1 entries
	ids       map[string]TermID // construction-phase lookup; nil after Compact
	prods     []uint32          // TermID → QRP hash product (pre-shift)
}

// Build interns every token of every name in libraries. Tokenization fans
// out over up to `workers` goroutines (≤ 0 resolves to GOMAXPROCS); the
// result is byte-identical for every worker count because IDs are assigned
// in sorted term order after the shards merge.
func Build(libraries [][]string, workers int) *Dict {
	workers = parallel.Workers(workers)
	shards := workers
	if shards > len(libraries) {
		shards = len(libraries)
	}
	if shards < 1 {
		shards = 1
	}
	sets := make([]map[string]struct{}, shards)
	// Contiguous library ranges per shard; each worker tokenizes its own
	// range into a private set, so no locking and no ordering sensitivity.
	_ = parallel.ForEach(workers, shards, func(s int) error {
		lo := s * len(libraries) / shards
		hi := (s + 1) * len(libraries) / shards
		set := make(map[string]struct{})
		for _, lib := range libraries[lo:hi] {
			for _, name := range lib {
				for _, tok := range terms.Tokenize(name) {
					if _, dup := set[tok]; !dup {
						// Clone: Tokenize returns substrings of a lowered
						// copy of the whole name; storing them directly
						// would retain one such copy per distinct name.
						set[strings.Clone(tok)] = struct{}{}
					}
				}
			}
		}
		sets[s] = set
		return nil
	})
	union := sets[0]
	if union == nil {
		union = map[string]struct{}{}
	}
	for _, set := range sets[1:] {
		for tok := range set {
			union[tok] = struct{}{}
		}
	}
	return FromTokenSet(union, workers)
}

// FromTokenSet builds the dictionary over an already-accumulated token
// set — the streaming construction path, where tokens are collected while
// libraries are spilled to disk rather than held in memory. The result is
// byte-identical to Build over any libraries whose tokens union to this
// set, because IDs are assigned in sorted term order either way.
func FromTokenSet(tokens map[string]struct{}, workers int) *Dict {
	workers = parallel.Workers(workers)
	sorted := make([]string, 0, len(tokens))
	var total int
	for tok := range tokens {
		sorted = append(sorted, tok)
		total += len(tok)
	}
	sort.Strings(sorted)
	// Spill the sorted terms into the arena; the token set and the sorted
	// string headers are all transient — after the build returns (and a
	// GC), the dictionary retains only arena + offsets + map.
	d := &Dict{
		termBytes: make([]byte, 0, total),
		termOff:   make([]uint32, 1, len(sorted)+1),
		ids:       make(map[string]TermID, len(sorted)),
	}
	for i, tok := range sorted {
		d.termBytes = append(d.termBytes, tok...)
		d.termOff = append(d.termOff, uint32(len(d.termBytes)))
		// Key the map by the arena view, not the transient clone.
		d.ids[d.Term(TermID(i))] = TermID(i)
	}
	d.prods = make([]uint32, len(sorted))
	d.hashProducts(workers)
	return d
}

// hashProducts fills prods with the QRP hash of every term. Products are
// pure per term, so parallel chunking cannot change the result.
func (d *Dict) hashProducts(workers int) {
	const chunk = 8192
	nChunks := (d.Len() + chunk - 1) / chunk
	_ = parallel.ForEach(workers, nChunks, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > d.Len() {
			hi = d.Len()
		}
		for i := lo; i < hi; i++ {
			d.prods[i] = qrp.HashProduct(d.Term(TermID(i)))
		}
		return nil
	})
}

// FromNames builds a dictionary over a flat name list (one "library").
func FromNames(names []string, workers int) *Dict {
	return Build([][]string{names}, workers)
}

// Raw returns the dictionary's storage — the concatenated term arena and
// its Len()+1 offsets — for persistence. The slices are views of the live
// dictionary; treat them as immutable.
func (d *Dict) Raw() (termBytes []byte, termOff []uint32) {
	return d.termBytes, d.termOff
}

// FromRaw reconstructs a dictionary from a persisted arena: offsets are
// validated (monotone, bounded, terms in strict lexicographic order — the
// invariant binary-search Lookup depends on) and the QRP hash products are
// recomputed in parallel chunks over up to `workers` goroutines. The
// result is Compact (no construction-phase lookup map) and adopts the
// given slices without copying.
func FromRaw(termBytes []byte, termOff []uint32, workers int) (*Dict, error) {
	if len(termOff) == 0 {
		return nil, fmt.Errorf("dict: FromRaw: missing offset table")
	}
	if termOff[0] != 0 || termOff[len(termOff)-1] != uint32(len(termBytes)) {
		return nil, fmt.Errorf("dict: FromRaw: offsets span [%d,%d] over %d arena bytes",
			termOff[0], termOff[len(termOff)-1], len(termBytes))
	}
	d := &Dict{termBytes: termBytes, termOff: termOff}
	for i := 1; i < d.Len(); i++ {
		if termOff[i] > termOff[i+1] {
			return nil, fmt.Errorf("dict: FromRaw: offsets not monotone at term %d", i)
		}
		if d.Term(TermID(i-1)) >= d.Term(TermID(i)) {
			return nil, fmt.Errorf("dict: FromRaw: terms out of order at %d", i)
		}
	}
	d.prods = make([]uint32, d.Len())
	d.hashProducts(workers)
	return d, nil
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.termOff) - 1 }

// Term returns the canonical string of id — a zero-copy view into the
// term arena (immutable, so safe to hold). It panics on out-of-range IDs
// (including NoTerm), like a slice index.
func (d *Dict) Term(id TermID) string {
	lo, hi := d.termOff[id], d.termOff[id+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&d.termBytes[lo], int(hi-lo))
}

// Compact drops the construction-phase lookup map: Lookup, Intern and
// Resolve fall back to binary search over the arena (terms are stored in
// lexicographic order). Call once per-peer index construction is done —
// query resolution touches a handful of tokens per flood, where a few
// string compares are noise, while the map is tens of bytes per term at
// paper scale. Must not race with concurrent lookups.
func (d *Dict) Compact() { d.ids = nil }

// search binary-searches the arena for tok.
func (d *Dict) search(tok string) (TermID, bool) {
	lo, hi := 0, d.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.Term(TermID(mid)) < tok {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < d.Len() && d.Term(TermID(lo)) == tok {
		return TermID(lo), true
	}
	return NoTerm, false
}

// Lookup resolves one token.
func (d *Dict) Lookup(tok string) (TermID, bool) {
	if d.ids != nil {
		id, ok := d.ids[tok]
		return id, ok
	}
	return d.search(tok)
}

// Intern returns the dictionary's canonical instance of tok (so callers can
// drop the backing array tok was sliced from) and whether tok is known.
func (d *Dict) Intern(tok string) (string, bool) {
	if id, ok := d.Lookup(tok); ok {
		return d.Term(id), true
	}
	return tok, false
}

// Resolve maps toks to TermIDs, appending to dst (pass dst[:0] to reuse a
// scratch slice). Unknown tokens resolve to NoTerm; ok reports whether
// every token was known. A conjunctive query with any unknown term can
// match nothing anywhere, so callers short-circuit on !ok.
func (d *Dict) Resolve(toks []string, dst []TermID) (ids []TermID, ok bool) {
	ok = true
	for _, tok := range toks {
		id, known := d.Lookup(tok)
		if !known {
			id = NoTerm
			ok = false
		}
		dst = append(dst, id)
	}
	return dst, ok
}

// Product returns the precomputed QRP hash product of id (see
// qrp.HashProduct); the slot for a table of 2^bits slots is
// qrp.SlotOf(Product(id), bits).
func (d *Dict) Product(id TermID) uint32 { return d.prods[id] }

// Slot returns id's QRP table slot at the given table width.
func (d *Dict) Slot(id TermID, bits uint) uint32 {
	return qrp.SlotOf(d.prods[id], bits)
}

// HeapBytes estimates the dictionary's retained heap: the term arena,
// offsets, QRP products, and — until Compact — the lookup map
// (conservative per-entry estimate; its keys are arena views, so only
// headers and buckets count).
func (d *Dict) HeapBytes() uint64 {
	b := uint64(len(d.termBytes))
	b += uint64(len(d.termOff)) * 4
	b += uint64(len(d.prods)) * 4
	if d.ids != nil {
		// map[string]TermID: key header + value + ~per-bucket overhead.
		b += uint64(len(d.ids)) * (uint64(unsafe.Sizeof("")) + 4 + 16)
	}
	return b
}

// Checksum folds the dictionary into a 64-bit FNV-1a fingerprint (for
// worker-count determinism gates). The value depends only on the term
// sequence, not on storage layout or Compact state.
func (d *Dict) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := d.Len()
	for i := 0; i < n; i++ {
		t := d.Term(TermID(i))
		for j := 0; j < len(t); j++ {
			h = (h ^ uint64(t[j])) * prime64
		}
		h = (h ^ 0xff) * prime64
	}
	return h
}

// String describes the dictionary (diagnostics).
func (d *Dict) String() string {
	return fmt.Sprintf("dict{%d terms, ~%d KiB}", d.Len(), d.HeapBytes()/1024)
}
