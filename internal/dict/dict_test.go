package dict

import (
	"testing"

	"querycentric/internal/qrp"
	"querycentric/internal/terms"
)

func testLibraries() [][]string {
	return [][]string{
		{"Artist One - First Song.mp3", "Artist Two - Second Song [live].mp3"},
		{"artist one - first song.mp3", "01 - Another Band - Track.wma"},
		{"Solo Performer - Deep Cut (remix).ogg"},
		{},
		{"Another Band - Track.wma", "zz_unique_name.flac"},
	}
}

func TestBuildWorkerInvariance(t *testing.T) {
	libs := testLibraries()
	base := Build(libs, 1)
	for _, w := range []int{2, 4, 8} {
		d := Build(libs, w)
		if d.Len() != base.Len() {
			t.Fatalf("workers=%d: %d terms, want %d", w, d.Len(), base.Len())
		}
		if d.Checksum() != base.Checksum() {
			t.Fatalf("workers=%d: checksum %x, want %x", w, d.Checksum(), base.Checksum())
		}
		for id := 0; id < d.Len(); id++ {
			if d.Term(TermID(id)) != base.Term(TermID(id)) {
				t.Fatalf("workers=%d: term %d = %q, want %q",
					w, id, d.Term(TermID(id)), base.Term(TermID(id)))
			}
		}
	}
}

func TestIDsAreSortedAndDense(t *testing.T) {
	d := Build(testLibraries(), 1)
	if d.Len() == 0 {
		t.Fatal("empty dictionary from non-empty libraries")
	}
	for id := 0; id < d.Len(); id++ {
		term := d.Term(TermID(id))
		if id > 0 && term <= d.Term(TermID(id-1)) {
			t.Fatalf("terms not strictly sorted at id %d: %q after %q",
				id, term, d.Term(TermID(id-1)))
		}
		got, ok := d.Lookup(term)
		if !ok || got != TermID(id) {
			t.Fatalf("Lookup(%q) = (%d, %v), want (%d, true)", term, got, ok, id)
		}
	}
}

func TestCoversEveryLibraryToken(t *testing.T) {
	libs := testLibraries()
	d := Build(libs, 1)
	for _, lib := range libs {
		for _, name := range lib {
			for _, tok := range terms.Tokenize(name) {
				if _, ok := d.Lookup(tok); !ok {
					t.Fatalf("library token %q missing from dictionary", tok)
				}
			}
		}
	}
}

func TestResolve(t *testing.T) {
	d := Build(testLibraries(), 1)
	ids, ok := d.Resolve(nil, nil)
	if !ok || len(ids) != 0 {
		t.Fatalf("Resolve(nil) = (%v, %v), want empty ok", ids, ok)
	}
	ids, ok = d.Resolve([]string{"artist", "song"}, nil)
	if !ok || len(ids) != 2 {
		t.Fatalf("Resolve(known) = (%v, %v), want 2 known IDs", ids, ok)
	}
	ids, ok = d.Resolve([]string{"artist", "nosuchterm"}, ids[:0])
	if ok {
		t.Fatal("Resolve with unknown token reported ok")
	}
	if len(ids) != 2 || ids[1] != NoTerm {
		t.Fatalf("Resolve(unknown) = %v, want [_, NoTerm]", ids)
	}
}

func TestIntern(t *testing.T) {
	d := Build(testLibraries(), 1)
	canon, ok := d.Intern("artist")
	if !ok || canon != "artist" {
		t.Fatalf("Intern(known) = (%q, %v)", canon, ok)
	}
	missing, ok := d.Intern("nosuchterm")
	if ok || missing != "nosuchterm" {
		t.Fatalf("Intern(unknown) = (%q, %v)", missing, ok)
	}
}

func TestProductMatchesQRPHash(t *testing.T) {
	d := Build(testLibraries(), 4)
	for _, bits := range []uint{8, 16} {
		for id := 0; id < d.Len(); id++ {
			term := d.Term(TermID(id))
			want := qrp.Hash(term, bits)
			if got := d.Slot(TermID(id), bits); got != want {
				t.Fatalf("Slot(%q, %d) = %d, want %d", term, bits, got, want)
			}
			if qrp.SlotOf(d.Product(TermID(id)), bits) != want {
				t.Fatalf("SlotOf(Product(%q)) disagrees with Hash", term)
			}
		}
	}
}

func TestFromNamesCollapsesDuplicates(t *testing.T) {
	d := FromNames([]string{"same name.mp3", "Same Name.mp3", "same NAME.mp3"}, 1)
	if d.Len() != 3 { // same, name, mp3
		t.Fatalf("got %d terms, want 3", d.Len())
	}
}

func TestHeapBytesPositive(t *testing.T) {
	d := Build(testLibraries(), 1)
	if d.HeapBytes() == 0 {
		t.Fatal("HeapBytes reported 0 for a populated dictionary")
	}
}
