// Package catalog builds the synthetic Gnutella content population: a
// global set of objects, a power-law replica count per object, and per-peer
// shared libraries of file names.
//
// This is the substitute for the paper's Gnutella file crawls (12.1M
// placements of 8.1M unique objects over 37,572 peers, April 2007). The
// replica-count distribution is a discrete power law P(k) ∝ k^-α calibrated
// so that the paper's headline marginals hold at any scale: ~70% of objects
// on a single peer, >98% of objects on at most 37 peers, mean replication
// ≈1.5–2. Replica placements may carry name variants (case, punctuation,
// featuring credits, misspellings) and a configurable set of non-specific
// names ("01 Track.wma") recurs on a large fraction of peers, as observed.
package catalog

import (
	"fmt"
	"math"
	"sort"

	"querycentric/internal/namegen"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
	"querycentric/internal/vocab"
	"querycentric/internal/zipf"
)

// Config sizes and shapes a content population.
type Config struct {
	Seed          uint64
	Peers         int     // number of peers sharing content
	UniqueObjects int     // number of distinct underlying objects
	ReplicaAlpha  float64 // exponent of P(replicas = k) ∝ k^-α; paper shape ⇒ ~2.45
	MaxReplicas   int     // cap on per-object replicas; 0 ⇒ min(Peers, 5000)

	// VariantProb is the chance a replica beyond the first is shared under
	// a perturbed name rather than the canonical one.
	VariantProb float64
	// NonSpecificPeerFrac is the fraction of peers that additionally share
	// each built-in non-specific name (the paper saw "01 Track.wma" on
	// 2,681 of 37,572 peers ≈ 7%). Zero disables.
	NonSpecificPeerFrac float64

	Vocab   vocab.Config   // vocabulary; zero value ⇒ sized from UniqueObjects
	NameGen namegen.Config // variant model; zero value ⇒ namegen defaults
}

// DefaultConfig returns the scaled-down calibration of the paper's
// April 2007 crawl: 1,000 peers, 81,000 unique objects.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		Peers:               1000,
		UniqueObjects:       81000,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}
}

// Object is one distinct underlying object.
type Object struct {
	ID       int
	Name     string // canonical shared name
	Replicas int    // number of peers assigned a copy
}

// Catalog is a fully built content population.
type Catalog struct {
	Config    Config
	Objects   []Object
	Libraries [][]string // Libraries[p] = file names shared by peer p

	// TotalPlacements counts every (peer, name) pair including
	// non-specific names.
	TotalPlacements int
}

// Sink receives the population as Stream generates it. Object (optional)
// is called once per distinct object in ID order; Place (required) once
// per (peer, shared name) placement in emission order — for a given peer
// that order is exactly the peer's library order. A non-nil error from
// Place aborts the stream.
type Sink struct {
	Object func(id int, name string, replicas int)
	Place  func(peer int, name string) error
}

// Build constructs the population for cfg. Identical configs build
// identical catalogs. Canonical name generation fans out over GOMAXPROCS
// workers; see BuildWorkers.
func Build(cfg Config) (*Catalog, error) {
	return BuildWorkers(cfg, 0)
}

// BuildWorkers is Build with an explicit worker bound for the parallel
// phase. It materializes the population Stream emits, so the two are
// draw-for-draw identical by construction.
func BuildWorkers(cfg Config, workers int) (*Catalog, error) {
	c := &Catalog{Config: cfg}
	if cfg.UniqueObjects > 0 {
		c.Objects = make([]Object, cfg.UniqueObjects)
	}
	if cfg.Peers > 0 {
		c.Libraries = make([][]string, cfg.Peers)
	}
	var err error
	c.TotalPlacements, err = Stream(cfg, workers, Sink{
		Object: func(id int, name string, replicas int) {
			c.Objects[id] = Object{ID: id, Name: name, Replicas: replicas}
		},
		Place: func(peer int, name string) error {
			c.Libraries[peer] = append(c.Libraries[peer], name)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Stream generates the population of cfg and hands it to sink without
// retaining it: peak memory is one chunk of canonical names plus the
// generator state, independent of UniqueObjects. It returns the total
// placement count. Only canonical name generation is parallelized —
// namegen.Canonical is a pure function of (seed, objID), drawn on its own
// derived stream — so the emission is byte-identical for every worker
// count. Replica counts, placements and name variants stay on shared
// sequential named streams; reordering those draws would change the
// population.
func Stream(cfg Config, workers int, sink Sink) (int, error) {
	if sink.Place == nil {
		return 0, fmt.Errorf("catalog: Stream needs a Place sink")
	}
	if cfg.Peers <= 0 {
		return 0, fmt.Errorf("catalog: Peers must be positive, got %d", cfg.Peers)
	}
	if cfg.UniqueObjects <= 0 {
		return 0, fmt.Errorf("catalog: UniqueObjects must be positive, got %d", cfg.UniqueObjects)
	}
	if cfg.ReplicaAlpha <= 1 {
		return 0, fmt.Errorf("catalog: ReplicaAlpha must exceed 1, got %g", cfg.ReplicaAlpha)
	}
	if cfg.VariantProb < 0 || cfg.VariantProb > 1 {
		return 0, fmt.Errorf("catalog: VariantProb out of range: %g", cfg.VariantProb)
	}
	if cfg.NonSpecificPeerFrac < 0 || cfg.NonSpecificPeerFrac > 1 {
		return 0, fmt.Errorf("catalog: NonSpecificPeerFrac out of range: %g", cfg.NonSpecificPeerFrac)
	}
	maxRep := cfg.MaxReplicas
	if maxRep <= 0 {
		maxRep = cfg.Peers
		if maxRep > 5000 {
			maxRep = 5000
		}
	}
	if maxRep > cfg.Peers {
		maxRep = cfg.Peers
	}

	vcfg := cfg.Vocab
	if vcfg.Artists == 0 {
		vcfg = sizedVocab(cfg.Seed, cfg.UniqueObjects)
	}
	voc, err := vocab.New(vcfg)
	if err != nil {
		return 0, err
	}
	ncfg := cfg.NameGen
	if ncfg == (namegen.Config{}) {
		ncfg = namegen.DefaultConfig()
	}
	gen, err := namegen.New(voc, ncfg, cfg.Seed)
	if err != nil {
		return 0, err
	}

	// Replica counts: P(k) ∝ k^-α over k in 1..maxRep. A zipf.Dist over
	// "ranks" 1..maxRep with exponent α is exactly this distribution.
	repDist, err := zipf.New(maxRep, cfg.ReplicaAlpha)
	if err != nil {
		return 0, err
	}

	repRNG := rng.NewNamed(cfg.Seed, "catalog/replicas")
	placeRNG := rng.NewNamed(cfg.Seed, "catalog/placement")
	varRNG := rng.NewNamed(cfg.Seed, "catalog/variants")

	// Peer propensity weights: real libraries are heterogeneous — a few
	// peers share a huge number of files. Draw lognormal-ish weights.
	weights := make([]float64, cfg.Peers)
	cum := make([]float64, cfg.Peers)
	wRNG := rng.NewNamed(cfg.Seed, "catalog/peer-weights")
	total := 0.0
	for i := range weights {
		w := math.Exp(wRNG.NormFloat64() * 1.2)
		weights[i] = w
		total += w
		cum[i] = total
	}

	// Canonical names are generated a bounded chunk at a time: each comes
	// from a per-object derived stream, so inner sub-chunks are independent
	// and safe to fan out. Generation is the dominant cost of a paper-scale
	// build (8.1M objects); chunking keeps only nameChunk names resident,
	// which is what lets the sharded snapshot builder stream arbitrarily
	// large populations.
	const (
		nameChunk = 1 << 16
		subChunk  = 1024
	)
	names := make([]string, 0, min(nameChunk, cfg.UniqueObjects))
	placed := 0
	for base := 0; base < cfg.UniqueObjects; base += nameChunk {
		hi := min(base+nameChunk, cfg.UniqueObjects)
		names = names[:hi-base]
		nSub := (len(names) + subChunk - 1) / subChunk
		if err := parallel.ForEach(workers, nSub, func(ci int) error {
			lo := ci * subChunk
			end := min(lo+subChunk, len(names))
			for i := lo; i < end; i++ {
				names[i] = gen.Canonical(base + i)
			}
			return nil
		}); err != nil {
			return 0, err
		}

		// Placement draws are strictly sequential across chunks: one shared
		// stream each for replica counts, peer choices and name variants.
		for i := base; i < hi; i++ {
			k := repDist.Sample(repRNG)
			name := names[i-base]
			if sink.Object != nil {
				sink.Object(i, name, k)
			}
			for _, p := range samplePeers(placeRNG, cum, k) {
				shared := name
				// The first replica keeps the canonical name; later replicas
				// may be perturbed copies.
				if cfg.VariantProb > 0 && varRNG.Bool(cfg.VariantProb) {
					shared = gen.Variant(name, varRNG)
				}
				if err := sink.Place(p, shared); err != nil {
					return 0, err
				}
				placed++
			}
		}
	}

	// Non-specific names recur independently across peers.
	if cfg.NonSpecificPeerFrac > 0 {
		nsRNG := rng.NewNamed(cfg.Seed, "catalog/nonspecific")
		for _, name := range namegen.NonSpecificNames {
			for p := 0; p < cfg.Peers; p++ {
				if nsRNG.Bool(cfg.NonSpecificPeerFrac) {
					if err := sink.Place(p, name); err != nil {
						return 0, err
					}
					placed++
				}
			}
		}
	}
	return placed, nil
}

// sizedVocab scales the vocabulary with the object population so that name
// collisions stay rare.
func sizedVocab(seed uint64, uniqueObjects int) vocab.Config {
	a := uniqueObjects / 20
	if a < 200 {
		a = 200
	}
	tt := uniqueObjects / 3
	if tt < 1000 {
		tt = 1000
	}
	al := uniqueObjects / 15
	if al < 100 {
		al = 100
	}
	return vocab.Config{Seed: seed, Artists: a, Titles: tt, Albums: al, Genres: 300, Extra: 500}
}

// samplePeers draws k distinct peer indices with probability proportional to
// the weight increments of cum.
func samplePeers(r *rng.Source, cum []float64, k int) []int {
	n := len(cum)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	// Rejection sampling; with k << n this terminates quickly. Guard with a
	// fallback to uniform distinct sampling if rejections pile up.
	for attempts := 0; len(out) < k && attempts < 50*k+100; attempts++ {
		p := r.WeightedIndex(cum)
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	for len(out) < k {
		p := r.Intn(n)
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}

// ReplicaCounts returns the per-object replica counts (for distribution
// analyses that want ground truth rather than crawled names).
func (c *Catalog) ReplicaCounts() []int {
	out := make([]int, len(c.Objects))
	for i, o := range c.Objects {
		out[i] = o.Replicas
	}
	return out
}

// MeanReplication returns mean replicas per unique object (ground truth).
func (c *Catalog) MeanReplication() float64 {
	if len(c.Objects) == 0 {
		return 0
	}
	sum := 0
	for _, o := range c.Objects {
		sum += o.Replicas
	}
	return float64(sum) / float64(len(c.Objects))
}

// LibrarySizes returns the number of names each peer shares, sorted
// ascending (for heterogeneity analyses).
func (c *Catalog) LibrarySizes() []int {
	out := make([]int, len(c.Libraries))
	for i, l := range c.Libraries {
		out[i] = len(l)
	}
	sort.Ints(out)
	return out
}
