package catalog

import (
	"testing"

	"querycentric/internal/stats"
)

func smallConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		Peers:               300,
		UniqueObjects:       8000,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}
}

func TestBuildValidation(t *testing.T) {
	bad := []Config{
		{Peers: 0, UniqueObjects: 10, ReplicaAlpha: 2},
		{Peers: 10, UniqueObjects: 0, ReplicaAlpha: 2},
		{Peers: 10, UniqueObjects: 10, ReplicaAlpha: 1},
		{Peers: 10, UniqueObjects: 10, ReplicaAlpha: 2, VariantProb: 1.5},
		{Peers: 10, UniqueObjects: 10, ReplicaAlpha: 2, NonSpecificPeerFrac: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPlacements != b.TotalPlacements {
		t.Fatalf("placements differ: %d vs %d", a.TotalPlacements, b.TotalPlacements)
	}
	for p := range a.Libraries {
		if len(a.Libraries[p]) != len(b.Libraries[p]) {
			t.Fatalf("peer %d library size differs", p)
		}
		for i := range a.Libraries[p] {
			if a.Libraries[p][i] != b.Libraries[p][i] {
				t.Fatalf("peer %d name %d differs", p, i)
			}
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	a, _ := Build(smallConfig(1))
	b, _ := Build(smallConfig(2))
	if a.Objects[0].Name == b.Objects[0].Name && a.Objects[1].Name == b.Objects[1].Name &&
		a.Objects[0].Replicas == b.Objects[0].Replicas && a.TotalPlacements == b.TotalPlacements {
		t.Error("different seeds produced suspiciously identical catalogs")
	}
}

func TestReplicaDistributionShape(t *testing.T) {
	// The calibration targets from DESIGN.md §5: ~70% singletons (we accept
	// 0.60–0.85 at this scale), ≥97% of objects on ≤37 peers, mean 1.2–2.5.
	c, err := Build(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	counts := c.ReplicaCounts()
	single := stats.FractionEqual(counts, 1)
	if single < 0.60 || single > 0.85 {
		t.Errorf("singleton fraction = %v, want in [0.60, 0.85]", single)
	}
	le37 := stats.FractionAtMost(counts, 37)
	if le37 < 0.97 {
		t.Errorf("fraction with <=37 replicas = %v, want >= 0.97", le37)
	}
	mean := c.MeanReplication()
	if mean < 1.2 || mean > 2.5 {
		t.Errorf("mean replication = %v, want in [1.2, 2.5]", mean)
	}
}

func TestPlacementsMatchReplicas(t *testing.T) {
	cfg := smallConfig(9)
	cfg.NonSpecificPeerFrac = 0 // so placements == sum of replicas
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, o := range c.Objects {
		sum += o.Replicas
	}
	if c.TotalPlacements != sum {
		t.Errorf("TotalPlacements = %d, want %d", c.TotalPlacements, sum)
	}
	libTotal := 0
	for _, l := range c.Libraries {
		libTotal += len(l)
	}
	if libTotal != sum {
		t.Errorf("library name total = %d, want %d", libTotal, sum)
	}
}

func TestNoVariantsMeansExactNames(t *testing.T) {
	cfg := smallConfig(11)
	cfg.VariantProb = 0
	cfg.NonSpecificPeerFrac = 0
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	canonical := map[string]bool{}
	for _, o := range c.Objects {
		canonical[o.Name] = true
	}
	for p, lib := range c.Libraries {
		for _, name := range lib {
			if !canonical[name] {
				t.Fatalf("peer %d shares non-canonical name %q with variants disabled", p, name)
			}
		}
	}
}

func TestNonSpecificNamesAppear(t *testing.T) {
	cfg := smallConfig(13)
	cfg.NonSpecificPeerFrac = 0.10
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, lib := range c.Libraries {
		for _, name := range lib {
			if name == "01 Track.wma" {
				holders++
				break
			}
		}
	}
	// Expect ~10% of 300 peers = 30; allow wide slack.
	if holders < 10 || holders > 60 {
		t.Errorf("non-specific name on %d peers, want ~30", holders)
	}
}

func TestReplicasWithinPeerBound(t *testing.T) {
	cfg := smallConfig(15)
	cfg.Peers = 20 // force the cap to bind
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Objects {
		if o.Replicas > cfg.Peers {
			t.Fatalf("object %d has %d replicas with only %d peers", o.ID, o.Replicas, cfg.Peers)
		}
	}
}

func TestReplicasOnDistinctPeers(t *testing.T) {
	cfg := smallConfig(17)
	cfg.VariantProb = 0
	cfg.NonSpecificPeerFrac = 0
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count name occurrences per peer: with variants off, an object placed
	// twice on a peer would duplicate its canonical name there.
	for p, lib := range c.Libraries {
		seen := map[string]int{}
		for _, n := range lib {
			seen[n]++
		}
		for n, k := range seen {
			if k > 1 {
				// Could also be a vocabulary collision between two objects;
				// verify against object table before failing.
				dup := 0
				for _, o := range c.Objects {
					if o.Name == n {
						dup++
					}
				}
				if dup < k {
					t.Fatalf("peer %d holds %d copies of %q (only %d objects share that name)", p, k, n, dup)
				}
			}
		}
	}
}

func TestLibrarySizesHeterogeneous(t *testing.T) {
	c, err := Build(smallConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	sizes := c.LibrarySizes()
	if len(sizes) != 300 {
		t.Fatalf("got %d library sizes", len(sizes))
	}
	if sizes[len(sizes)-1] <= sizes[len(sizes)/2] {
		t.Error("expected heavy-tailed library sizes (max > median)")
	}
}

func TestDefaultConfigBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale build in -short mode")
	}
	c, err := Build(DefaultConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Objects) != 81000 || len(c.Libraries) != 1000 {
		t.Fatalf("unexpected sizes: %d objects, %d peers", len(c.Objects), len(c.Libraries))
	}
}

func BenchmarkBuild(b *testing.B) {
	cfg := smallConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamMatchesBuild pins the Sink contract the sharded snapshot
// builder depends on: Stream emits exactly Build's population — the same
// objects in ID order and, per peer, placements in exactly library order —
// at every worker count.
func TestStreamMatchesBuild(t *testing.T) {
	cfg := smallConfig(7)
	want, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		objs := 0
		libs := make([][]string, cfg.Peers)
		placed, err := Stream(cfg, workers, Sink{
			Object: func(id int, name string, replicas int) {
				if o := want.Objects[id]; o.Name != name || o.Replicas != replicas {
					t.Fatalf("workers=%d: object %d = (%q, %d), Build has (%q, %d)",
						workers, id, name, replicas, o.Name, o.Replicas)
				}
				objs++
			},
			Place: func(peer int, name string) error {
				libs[peer] = append(libs[peer], name)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if placed != want.TotalPlacements {
			t.Fatalf("workers=%d: %d placements, Build counted %d", workers, placed, want.TotalPlacements)
		}
		if objs != len(want.Objects) {
			t.Fatalf("workers=%d: Object called %d times for %d objects", workers, objs, len(want.Objects))
		}
		for p := range libs {
			if len(libs[p]) != len(want.Libraries[p]) {
				t.Fatalf("workers=%d: peer %d has %d names, Build has %d",
					workers, p, len(libs[p]), len(want.Libraries[p]))
			}
			for i := range libs[p] {
				if libs[p][i] != want.Libraries[p][i] {
					t.Fatalf("workers=%d: peer %d name %d = %q, Build has %q",
						workers, p, i, libs[p][i], want.Libraries[p][i])
				}
			}
		}
	}
}

// TestStreamValidation: Stream (not just Build) must reject a nil Place
// sink and bad configs before doing any work.
func TestStreamValidation(t *testing.T) {
	if _, err := Stream(smallConfig(1), 0, Sink{}); err == nil {
		t.Fatal("Stream accepted a nil Place sink")
	}
	bad := smallConfig(1)
	bad.Peers = 0
	if _, err := Stream(bad, 0, Sink{Place: func(int, string) error { return nil }}); err == nil {
		t.Fatal("Stream accepted zero peers")
	}
}
