// Package rng provides deterministic, splittable pseudo-random number
// generation for the whole reproduction.
//
// Every generator, simulator and workload in this repository derives its
// randomness from a named stream so that (a) runs are reproducible from a
// single root seed and (b) adding or reordering one component never perturbs
// the random sequence consumed by another. The core generator is SplitMix64
// (Steele, Lea, Flood 2014), which is tiny, fast, passes BigCrush when used
// as described, and — unlike math/rand's global state — trivially
// splittable by hashing a stream name into the seed.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic 64-bit PRNG stream. It intentionally mirrors a
// subset of math/rand/v2 so call sites read idiomatically, but it is a
// concrete struct: copying a Source forks the stream, which experiment
// runners use to run independent trials from a common prefix.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical sequences on all platforms.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// NewNamed returns a Source for the stream identified by (seed, name).
// Distinct names yield statistically independent streams; the mapping is
// stable across runs and platforms.
func NewNamed(seed uint64, name string) *Source {
	h := fnv64a(name)
	// Mix the name hash into the seed through one SplitMix64 round so that
	// related seeds (seed, seed+1) with the same name still diverge fully.
	return &Source{state: mix64(seed ^ h)}
}

// Split returns a child Source whose stream is independent of the parent's
// subsequent output. The parent advances by one step.
func (s *Source) Split(name string) *Source {
	return &Source{state: mix64(s.Uint64() ^ fnv64a(name))}
}

// Fork returns a copy of the Source at its current position. The copy and
// the original produce identical subsequent values until one of them is
// advanced past the other.
func (s *Source) Fork() *Source {
	cp := *s
	return &cp
}

// Derive returns the child Source that Split(name) would return, without
// advancing the parent. Because the parent's state is untouched, deriving
// "trial/0" … "trial/n" from one Source is order-independent: any subset,
// in any order, from any goroutine, yields the same children. This is the
// primitive the parallel trial engine builds on — each trial's stream
// depends only on (parent state, trial name), never on scheduling.
//
// The parent must not be advanced concurrently with Derive calls; the
// engines that fan trials out hold the parent fixed for the duration.
func (s *Source) Derive(name string) *Source {
	cp := *s
	return cp.Split(name)
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses the normal approximation (adequate for workload generation).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := mean + math.Sqrt(mean)*s.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's product method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns a geometric variate (number of failures before the
// first success) with success probability p in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with p <= 0")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles xs in place (Fisher–Yates).
func (s *Source) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// SampleInts returns k distinct values drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0. For k much smaller than n it
// uses rejection from a set; otherwise a partial Fisher–Yates.
func (s *Source) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleInts with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.Intn(n)
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// WeightedIndex returns an index in [0, len(cum)) selected with probability
// proportional to the increments of the cumulative weight slice cum, which
// must be non-decreasing with a positive final value.
func (s *Source) WeightedIndex(cum []float64) int {
	if len(cum) == 0 {
		panic("rng: WeightedIndex with empty cumulative weights")
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		panic("rng: WeightedIndex with non-positive total weight")
	}
	x := s.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mix64 is the SplitMix64 finalizer, used to derive seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64a hashes a string with FNV-1a (inlined to avoid an allocation).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
