package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at step %d", i)
		}
	}
}

func TestNamedStreamsDiffer(t *testing.T) {
	a := NewNamed(7, "catalog")
	b := NewNamed(7, "queries")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("named streams collided %d/100 times", same)
	}
}

func TestNamedStreamStable(t *testing.T) {
	// Pin the derivation so a refactor can't silently re-randomize every
	// experiment in the repo.
	got := NewNamed(1, "x").Uint64()
	again := NewNamed(1, "x").Uint64()
	if got != again {
		t.Fatalf("NewNamed not stable: %d vs %d", got, again)
	}
}

func TestDeriveMatchesSplitWithoutAdvancing(t *testing.T) {
	a := NewNamed(9, "derive")
	b := NewNamed(9, "derive")
	// Derive must hand out exactly Split's child...
	da := a.Derive("trial/3")
	sb := b.Split("trial/3")
	for i := 0; i < 8; i++ {
		if da.Uint64() != sb.Uint64() {
			t.Fatal("Derive child diverged from Split child")
		}
	}
	// ...without moving the parent: a is still at its initial state while
	// b advanced one step, and derivation order must not matter.
	x := a.Derive("trial/7").Uint64()
	_ = a.Derive("trial/8")
	y := NewNamed(9, "derive").Derive("trial/7").Uint64()
	if x != y {
		t.Fatal("Derive advanced the parent or is order-dependent")
	}
	if a.Uint64() != NewNamed(9, "derive").Uint64() {
		t.Fatal("Derive consumed parent state")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(3)
	child := parent.Split("child")
	// The child must not replay the parent's stream.
	p := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		p[parent.Uint64()] = true
	}
	for i := 0; i < 200; i++ {
		if p[child.Uint64()] {
			t.Fatal("child stream replayed a parent value")
		}
	}
}

func TestForkReplays(t *testing.T) {
	s := New(9)
	s.Uint64()
	f := s.Fork()
	for i := 0; i < 50; i++ {
		if s.Uint64() != f.Uint64() {
			t.Fatal("fork diverged from original")
		}
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(17)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	p := 0.25
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	got := float64(sum) / n
	want := (1 - p) / p
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	s := New(29)
	for _, tc := range []struct{ n, k int }{{10, 10}, {1000, 5}, {100, 50}, {5, 0}} {
		out := s.SampleInts(tc.n, tc.k)
		if len(out) != tc.k {
			t.Fatalf("SampleInts(%d,%d) returned %d values", tc.n, tc.k, len(out))
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleInts(%d,%d) invalid output %v", tc.n, tc.k, out)
			}
			seen[v] = true
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(31)
	cum := []float64{1, 1, 4} // weights 1, 0, 3
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(cum)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket selected %d times", counts[1])
	}
	if r := float64(counts[2]) / float64(counts[0]); r < 2.7 || r > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", r)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	s := New(37)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	s := New(41)
	f := func(n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	s := New(1)
	for name, f := range map[string]func(){
		"Uint64n(0)":        func() { s.Uint64n(0) },
		"Intn(0)":           func() { s.Intn(0) },
		"Intn(-1)":          func() { s.Intn(-1) },
		"Geometric(0)":      func() { s.Geometric(0) },
		"SampleInts(1,2)":   func() { s.SampleInts(1, 2) },
		"WeightedIndex nil": func() { s.WeightedIndex(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64n(37572)
	}
}

func TestBool(t *testing.T) {
	s := New(43)
	if s.Bool(0) || s.Bool(-1) {
		t.Error("Bool(<=0) returned true")
	}
	if !s.Bool(1) || !s.Bool(2) {
		t.Error("Bool(>=1) returned false")
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(47)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestShuffleFunc(t *testing.T) {
	s := New(53)
	xs := []string{"a", "b", "c", "d", "e", "f"}
	orig := append([]string{}, xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[string]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	for _, x := range orig {
		if !seen[x] {
			t.Fatalf("shuffle lost element %q", x)
		}
	}
}

func TestGeometricCertainSuccess(t *testing.T) {
	s := New(59)
	for i := 0; i < 10; i++ {
		if s.Geometric(1) != 0 {
			t.Fatal("Geometric(1) should be 0")
		}
	}
}
