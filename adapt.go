package querycentric

import (
	"querycentric/internal/adaptive"
	"querycentric/internal/events"
	"querycentric/internal/experiments"
	"querycentric/internal/shortcuts"
	"querycentric/internal/strategy"
)

// Unified overlay-strategy surface (see internal/strategy): every search
// strategy that replays the shared workload derivation — interest
// shortcuts, Gia and the adaptive overlay — implements AdaptivePolicy, so
// experiments compare arms over the identical (origin, object) query
// sequence. Strategies that mutate topology additionally implement
// Rewirer and expose their edge-swap log.
type (
	AdaptivePolicy = strategy.AdaptivePolicy
	Rewirer        = strategy.Rewirer
	StrategyStats  = strategy.Stats
	RewireDecision = strategy.RewireDecision
)

// Workload derivation helpers: WorkloadStream names the base stream of a
// workload seed and QueryStream derives query i's substream, the contract
// every AdaptivePolicy replays.
var (
	WorkloadStream = strategy.WorkloadStream
	QueryStream    = strategy.QueryStream
)

// Interest-based shortcuts (Sripanidkulchai-style) over the projected
// overlay.
type (
	ShortcutSystem = shortcuts.System
	ShortcutConfig = shortcuts.Config
)

// Shortcut constructors.
var (
	NewShortcuts          = shortcuts.New
	DefaultShortcutConfig = shortcuts.DefaultConfig
)

// Adaptive overlay (see internal/adaptive): query-stream-driven rewiring
// from QueryHit answer paths plus hot-object replication from a windowed
// popularity sketch, over the wire-level Gnutella network.
type (
	AdaptiveSystem = adaptive.System
	AdaptiveConfig = adaptive.Config
	AdaptiveObject = adaptive.Object
	ReplScheme     = adaptive.Scheme
)

// Replica-placement schemes.
const (
	ReplSchemeOwner  = adaptive.SchemeOwner
	ReplSchemePath   = adaptive.SchemePath
	ReplSchemeRandom = adaptive.SchemeRandom
	ReplSchemeSqrt   = adaptive.SchemeSqrt
)

// Adaptive constructors; ReplSchemes lists the valid scheme names for
// flag validation.
var (
	NewAdaptive           = adaptive.New
	DefaultAdaptiveConfig = adaptive.DefaultConfig
	ReplSchemes           = adaptive.Schemes
)

// The unified strategy surface: all three search strategies speak
// AdaptivePolicy, and the topology-mutating one is a Rewirer.
var _ = []AdaptivePolicy{
	(*ShortcutSystem)(nil),
	(*GiaSystem)(nil),
	(*AdaptiveSystem)(nil),
}
var _ Rewirer = (*AdaptiveSystem)(nil)

// ScheduleAdaptationRounds schedules recurring overlay-adaptation rounds
// on the event engine at PrioAdapt (after maintenance, before that
// instant's query batch).
var ScheduleAdaptationRounds = events.ScheduleAdaptationRounds

// Query-centric head-to-head types: the five-arm comparison of static
// flooding, QRP, interest shortcuts, the adaptive overlay and Chord under
// the paper's query/file mismatch.
type (
	QueryCentricResult = experiments.QueryCentricResult
	QueryCentricArm    = experiments.QueryCentricArm
	QueryCentricConfig = experiments.QueryCentricConfig
)

// DefaultQueryCentricConfig mirrors the adaptive package's default knobs.
func DefaultQueryCentricConfig() QueryCentricConfig {
	return experiments.DefaultQueryCentricConfig()
}

// QueryCentric runs the five-arm head-to-head with default knobs.
func QueryCentric(e *Env) (*QueryCentricResult, error) { return experiments.QueryCentric(e) }

// QueryCentricWith runs the head-to-head with explicit adaptation knobs.
func QueryCentricWith(e *Env, cfg QueryCentricConfig) (*QueryCentricResult, error) {
	return experiments.QueryCentricWith(e, cfg)
}
